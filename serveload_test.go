// End-to-end smoke test for the serving benchmark: build fvcached and
// serveload, run a short seeded load against a spawned server, and
// check the emitted BENCH_serve.json passes serveload -verify — the
// same gate make check applies to the committed artifact.
package fvcache_test

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"testing"

	"fvcache/internal/obs"
)

func TestServeLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs binaries")
	}
	if runtime.GOOS == "windows" {
		t.Skip("drains via SIGTERM")
	}
	dir := t.TempDir()
	fvcached := filepath.Join(dir, "fvcached")
	serveload := filepath.Join(dir, "serveload")
	for bin, pkg := range map[string]string{fvcached: "./cmd/fvcached", serveload: "./cmd/serveload"} {
		if out, err := exec.Command("go", "build", "-o", bin, pkg).CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	artifact := filepath.Join(dir, "BENCH_serve.json")
	run := exec.Command(serveload,
		"-fvcached", fvcached, "-o", artifact,
		"-warmup", "400ms", "-closed", "600ms",
		"-open", "600ms", "-rate", "60",
		"-burst-rounds", "3", "-burst", "12",
		"-deadline-phase", "300ms")
	if out, err := run.CombinedOutput(); err != nil {
		t.Fatalf("serveload: %v\n%s", err, out)
	}

	// The artifact must satisfy its own validator.
	if out, err := exec.Command(serveload, "-verify", artifact).CombinedOutput(); err != nil {
		t.Fatalf("serveload -verify: %v\n%s", err, out)
	}

	// The SIGTERM drain exports the serving-path telemetry next to the
	// artifact: exact-quantile latency histograms and the span trees
	// from the flight recorder.
	tbuf, err := os.ReadFile(filepath.Join(dir, "telemetry_serve.json"))
	if err != nil {
		t.Fatalf("spawned fvcached exported no telemetry: %v", err)
	}
	snap, err := obs.ValidateSnapshot(tbuf)
	if err != nil {
		t.Fatalf("exported snapshot invalid: %v", err)
	}
	if len(snap.Latencies) == 0 {
		t.Error("snapshot carries no latency histograms")
	}
	if len(snap.Requests) == 0 {
		t.Error("snapshot carries no request traces")
	}

	// Spot-check the artifact's load shape: a warmed fingerprint-reusing
	// mix must hit the cache, and the burst phase must coalesce.
	abuf, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		HitRatio      float64 `json:"hit_ratio"`
		CoalesceRatio float64 `json:"coalesce_ratio"`
	}
	if err := json.Unmarshal(abuf, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.HitRatio == 0 {
		t.Error("hit_ratio is 0 after warmup")
	}
	if rep.CoalesceRatio == 0 {
		t.Error("coalesce_ratio is 0 despite burst phase")
	}
}
