// Crash-recovery test for the fvcached durable result cache: kill the
// service with SIGKILL (no drain, no flush), tear the on-disk entry a
// crash mid-write would leave behind, restart over the same cache
// directory and prove the boot recovery scan quarantines the damage,
// that no corrupt entry is ever served, and that the re-request
// recomputes results bit-identical to the cold run.
package fvcache_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// fvcachedInstance is one running fvcached process under test.
type fvcachedInstance struct {
	cmd    *exec.Cmd
	base   string
	exited chan error
}

// startFVCached boots the binary with the given extra flags and waits
// for /readyz to go green.
func startFVCached(t *testing.T, bin string, extra ...string) *fvcachedInstance {
	t.Helper()
	// -telemetry-out defaults to ./telemetry.json, which would
	// overwrite the committed artifact on every run; extra flags
	// appear later on the command line, so a caller can re-enable it.
	args := append([]string{"-addr", "127.0.0.1:0", "-telemetry-out", ""}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	inst := &fvcachedInstance{cmd: cmd, exited: make(chan error, 1)}
	go func() { inst.exited <- cmd.Wait() }()
	t.Cleanup(func() { cmd.Process.Kill() })

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("startup line %q carries no address", line)
	}
	inst.base = "http://" + strings.TrimSpace(line[i+len(marker):])
	go func() {
		for sc.Scan() {
		}
	}()

	// The listener is up before the cache recovery scan finishes;
	// readiness flips once boot work is done.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(inst.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return inst
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("service never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// measure posts one fixed measurement and returns the raw results JSON
// plus the batch stanza.
func (inst *fvcachedInstance) measure(t *testing.T) (json.RawMessage, int) {
	t.Helper()
	const body = `{"workload":"goboard","config":{"main_bytes":8192,"fvc_entries":256}}`
	resp, err := http.Post(inst.base+"/v1/measure", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Results json.RawMessage `json:"results"`
		Batch   struct {
			CacheHits int `json:"cache_hits"`
		} `json:"batch"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("measure response: %v\n%s", err, data)
	}
	return out.Results, out.Batch.CacheHits
}

// metricValue scrapes /debug/metrics for one counter.
func (inst *fvcachedInstance) metricValue(t *testing.T, name string) float64 {
	t.Helper()
	resp, err := http.Get(inst.base + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, line := range strings.Split(string(page), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			if v, err := strconv.ParseFloat(fields[1], 64); err == nil {
				return v
			}
		}
	}
	return 0
}

func TestCrashRecoveryQuarantinesAndRecomputes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	if runtime.GOOS == "windows" {
		t.Skip("uses SIGKILL")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fvcached")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/fvcached").CombinedOutput(); err != nil {
		t.Fatalf("building fvcached: %v\n%s", err, out)
	}
	cacheDir := filepath.Join(dir, "cache")

	// Phase 1: boot, measure (cold compute), repeat until the entry is
	// promoted to disk (admission requires reuse, so the third request
	// crosses the threshold).
	a := startFVCached(t, bin, "-cache-dir", cacheDir)
	cold, hits := a.measure(t)
	if hits != 0 {
		t.Fatalf("cold request reported %d cache hits", hits)
	}
	for i := 0; i < 2; i++ {
		warm, hits := a.measure(t)
		if string(warm) != string(cold) {
			t.Fatalf("warm repeat %d diverged from cold:\ncold %s\nwarm %s", i, cold, warm)
		}
		if hits != 1 {
			t.Fatalf("warm repeat %d: cache hits = %d, want 1", i, hits)
		}
	}
	entries, err := filepath.Glob(filepath.Join(cacheDir, "*.fvr"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("promoted entries on disk: %v (err %v), want 1", entries, err)
	}

	// Phase 2: SIGKILL — no drain, no cleanup — then inflict the damage
	// an interrupted promotion leaves: a torn (half-written) entry and a
	// stray temp file.
	if err := a.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	select {
	case <-a.exited:
	case <-time.After(10 * time.Second):
		t.Fatal("process survived SIGKILL")
	}
	data, err := os.ReadFile(entries[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entries[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(cacheDir, "inflight.fvr.tmp"), data[:16], 0o644); err != nil {
		t.Fatal(err)
	}

	// Phase 3: restart over the damaged directory. The boot recovery
	// scan must quarantine both files before /readyz goes green.
	b := startFVCached(t, bin, "-cache-dir", cacheDir)
	if q := b.metricValue(t, "resultcache_corrupt_quarantined"); q < 2 {
		t.Errorf("resultcache_corrupt_quarantined = %v, want >= 2 (torn entry + temp file)", q)
	}
	qfiles, err := os.ReadDir(filepath.Join(cacheDir, "corrupt"))
	if err != nil || len(qfiles) < 2 {
		t.Errorf("corrupt/ holds %d files (err %v), want >= 2", len(qfiles), err)
	}
	if left, _ := filepath.Glob(filepath.Join(cacheDir, "*.fvr")); len(left) != 0 {
		t.Errorf("damaged entries still indexed in cache root: %v", left)
	}

	// Phase 4: the re-request must recompute — never serve the torn
	// entry — and the recomputed results must be bit-identical to the
	// cold run (the engine is deterministic).
	recomputed, hits := b.measure(t)
	if hits != 0 {
		t.Errorf("re-request after quarantine reported %d cache hits; the torn entry must not serve", hits)
	}
	if string(recomputed) != string(cold) {
		t.Errorf("recomputed results diverged from cold compute:\ncold %s\nnew  %s", cold, recomputed)
	}

	// The cache is healthy again: repeats hit, and a graceful drain
	// exits clean.
	if _, hits := b.measure(t); hits != 1 {
		t.Errorf("repeat after recompute: cache hits = %d, want 1", hits)
	}
	if err := b.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-b.exited:
		if err != nil {
			t.Errorf("fvcached exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Error("fvcached did not exit after SIGTERM")
	}
}
