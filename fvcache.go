// Public facade of the fvcache module: stable, context-aware entry
// points over the internal simulation engine. External consumers (the
// examples/ programs, the fvcached service, and any future importer)
// use only this surface; the internal/ packages behind it may be
// refactored freely.
//
// The facade exposes five operations:
//
//   - Workloads / LookupWorkload / RegisterWorkload: the synthetic
//     benchmark registry (and the hook for custom workloads).
//   - Profile: a workload's most frequently accessed values (the
//     paper's profile-directed FVT selection).
//   - Measure: one configuration measured over one workload.
//   - MeasureBatch: many configurations fused into a single replay
//     pass over one shared recording (the sweep engine).
//   - MissRateCurves: exact LRU miss-rate curves from one Mattson
//     reuse-distance pass (every power-of-two size at once, no
//     per-point replay).
//   - Sweep: the paper's experiment artifacts (see sweep.go).
//
// Every operation takes a context and honors cancellation at replay
// chunk boundaries; all of them share the process-wide recording and
// profile caches, so repeated calls against the same (workload, scale)
// execute the workload only once.
package fvcache

import (
	"context"
	"fmt"

	"fvcache/internal/cache"
	"fvcache/internal/cacti"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/memsim"
	"fvcache/internal/mrc"
	"fvcache/internal/sim"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

// Scale selects a workload input size, mirroring SPEC's test, train
// and ref inputs.
type Scale = workload.Scale

// The three input scales.
const (
	Test  = workload.Test
	Train = workload.Train
	Ref   = workload.Ref
)

// ParseScale converts "test", "train" or "ref" to a Scale.
func ParseScale(s string) (Scale, error) { return workload.ParseScale(s) }

// EngineVersion identifies the measurement engine's result semantics.
// It participates in durable result-cache keys (internal/resultcache),
// so entries persisted by an older engine are never served as current
// results. Bump it whenever a change can alter measured numbers:
// stats accounting, replay semantics, workload generation, or the
// profile-directed FVT selection.
const EngineVersion = "fvcache-engine/1"

// Config selects a cache hierarchy: main cache geometry, optional FVC
// or victim cache, optional L2, and the design-ablation knobs.
type Config = core.Config

// CacheParams is a conventional cache geometry (size, line, assoc).
type CacheParams = cache.Params

// FVCParams is a frequent value cache geometry.
type FVCParams = fvc.Params

// Stats are the hierarchy counters a measurement produces.
type Stats = core.Stats

// MeasureResult is one configuration's measurement outcome.
type MeasureResult = sim.MeasureResult

// Workload is a runnable synthetic benchmark; implement it against Env
// and register it with RegisterWorkload to measure custom programs.
type Workload = workload.Workload

// Env is the instrumented memory substrate workloads run against.
type Env = memsim.Env

// ValueCount pairs a value with its access frequency.
type ValueCount = trace.ValueCount

// FVTable is a frequent value table: the bidirectional value<->code
// mapping the FVC encodes lines with (paper Figure 7).
type FVTable = fvc.Table

// NewFVTable builds a frequent value table from bits-wide codes over
// the given values, most frequent first.
func NewFVTable(bits int, values []uint32) (*FVTable, error) { return fvc.NewTable(bits, values) }

// MustFVTable is NewFVTable, panicking on error.
func MustFVTable(bits int, values []uint32) *FVTable { return fvc.MustTable(bits, values) }

// MaxFVTValues returns how many values fit a bits-wide code space (one
// code is reserved as the escape).
func MaxFVTValues(bits int) int { return fvc.MaxValues(bits) }

// AccessTimeModel is the CACTI-style access-time model used for the
// paper's equal-access-time comparisons (Figure 9).
type AccessTimeModel = cacti.Model

// DefaultAccessTimes returns the 0.8um access-time model.
func DefaultAccessTimes() AccessTimeModel { return cacti.Default08um() }

// WorkloadInfo describes one registered workload.
type WorkloadInfo struct {
	// Name is the registry key, e.g. "goboard".
	Name string `json:"name"`
	// Analogue names the SPEC95 program the workload mirrors.
	Analogue string `json:"analogue"`
	// Description summarizes what the workload does.
	Description string `json:"description"`
	// FVL reports whether the analogue exhibits frequent value
	// locality.
	FVL bool `json:"fvl"`
}

// Workloads lists every registered workload, sorted by name.
func Workloads() []WorkloadInfo {
	all := workload.All()
	out := make([]WorkloadInfo, len(all))
	for i, w := range all {
		out[i] = WorkloadInfo{Name: w.Name(), Analogue: w.Analogue(), Description: w.Description(), FVL: w.FVL()}
	}
	return out
}

// LookupWorkload returns the named workload.
func LookupWorkload(name string) (Workload, error) { return workload.Get(name) }

// RegisterWorkload adds a custom workload to the registry so the
// measurement entry points (and the fvcached service) can run it by
// name. It panics on a duplicate name.
func RegisterWorkload(w Workload) { workload.Register(w) }

// Options tunes a measurement.
type Options struct {
	// SampleEvery samples the FVC's frequent-value content every this
	// many accesses (0 disables sampling).
	SampleEvery uint64 `json:"sample_every,omitempty"`
	// VerifyValues enables the hierarchy's value-verification asserts.
	VerifyValues bool `json:"verify_values,omitempty"`
	// WarmupAccesses excludes the first N accesses from the reported
	// statistics (the hierarchy still simulates them).
	WarmupAccesses uint64 `json:"warmup_accesses,omitempty"`
	// AuditEvery re-checks the hierarchy's structural invariants every
	// N accesses (0 disables auditing).
	AuditEvery uint64 `json:"audit_every,omitempty"`
	// Parallelism, when positive, replays the measurement's recording
	// chunk-parallel on up to that many workers (seeded from per-chunk
	// memory checkpoints, seam-spliced exactly — results stay
	// bit-identical to a serial replay). 0 replays serially. Excluded
	// from JSON serialization on purpose: parallelism does not change
	// results, so it must not fragment request-coalescing or
	// result-cache keys derived from these options.
	Parallelism int `json:"-"`
}

// simOptions maps public options onto the internal measurement
// options, wiring the caller's context and a telemetry label in.
func (o Options) simOptions(ctx context.Context, label string) sim.MeasureOptions {
	return sim.MeasureOptions{
		SampleEvery:    o.SampleEvery,
		VerifyValues:   o.VerifyValues,
		WarmupAccesses: o.WarmupAccesses,
		AuditEvery:     o.AuditEvery,
		Label:          label,
		Ctx:            ctx,
		Parallelism:    o.Parallelism,
	}
}

// MeasureRequest names one measurement: a workload, an input scale,
// one configuration and the measurement options.
type MeasureRequest struct {
	Workload string
	Scale    Scale
	Config   Config
	Options  Options
}

// Measure runs one configuration over one workload. The workload is
// recorded once into the shared recording cache and measured from the
// replay, so consecutive calls against the same (workload, scale) skip
// re-executing it; results are bit-identical to a live run.
func Measure(ctx context.Context, req MeasureRequest) (MeasureResult, error) {
	w, err := workload.Get(req.Workload)
	if err != nil {
		return MeasureResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return MeasureResult{}, err
	}
	rec, err := sim.Recordings.Get(w, req.Scale)
	if err != nil {
		return MeasureResult{}, err
	}
	if req.Options.Parallelism > 0 {
		// The chunk-parallel engine lives behind the batch entry point;
		// a single configuration is a batch of one.
		out, err := sim.MeasureRecordedBatch(rec, []core.Config{req.Config}, req.Options.simOptions(ctx, ""))
		if err != nil {
			return MeasureResult{}, err
		}
		return out[0], nil
	}
	return sim.MeasureRecorded(rec, req.Config, req.Options.simOptions(ctx, ""))
}

// MeasureBatchRequest names a fused sweep: many configurations
// measured over one workload in a single replay pass.
type MeasureBatchRequest struct {
	Workload string
	Scale    Scale
	Configs  []Config
	Options  Options
}

// MeasureBatch measures every configuration of the request in
// lockstep over one shared replay of the workload (the fused sweep
// engine): a K-point batch pays the trace traversal once instead of K
// times. Results are returned in Configs order and are bit-identical
// to K separate Measure calls.
func MeasureBatch(ctx context.Context, req MeasureBatchRequest) ([]MeasureResult, error) {
	w, err := workload.Get(req.Workload)
	if err != nil {
		return nil, err
	}
	if len(req.Configs) == 0 {
		return nil, fmt.Errorf("fvcache: batch request carries no configurations")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec, err := sim.Recordings.Get(w, req.Scale)
	if err != nil {
		return nil, err
	}
	return sim.MeasureRecordedBatch(rec, req.Configs, req.Options.simOptions(ctx, w.Name()))
}

// ProfileRequest asks for a workload's K most frequently accessed
// values.
type ProfileRequest struct {
	Workload string
	Scale    Scale
	K        int
}

// Profile returns the workload's K most frequently accessed values at
// scale — the FVT a profile-directed compiler/loader would install.
// The returned slice is shared with the process-wide profile cache and
// must not be mutated.
func Profile(ctx context.Context, req ProfileRequest) ([]uint32, error) {
	w, err := workload.Get(req.Workload)
	if err != nil {
		return nil, err
	}
	if req.K <= 0 {
		return nil, fmt.Errorf("fvcache: profile request wants %d values", req.K)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sim.ProfileTopAccessed(w, req.Scale, req.K), nil
}

// MRCResult is the output of one Mattson reuse-distance pass: exact
// miss-rate curves for every requested set-indexed LRU geometry
// family, every power-of-two size at once.
type MRCResult = mrc.Result

// MRCCurve is one geometry family's curve (fixed set count,
// associativity doubling per point).
type MRCCurve = mrc.Curve

// MRCPoint is one exact (size, associativity, miss count) sample.
type MRCPoint = mrc.Point

// DefaultMRCMaxSizeBytes is the top of the size ladder when a request
// leaves MaxSizeBytes zero.
const DefaultMRCMaxSizeBytes = mrc.DefaultMaxSizeBytes

// MRCRequest asks for a workload's miss-rate curves.
type MRCRequest struct {
	Workload string `json:"workload"`
	Scale    Scale  `json:"scale"`
	// LineBytes is the cache-line size of every modeled geometry; a
	// power of two >= 4. Required.
	LineBytes int `json:"line_bytes"`
	// MaxSizeBytes is the inclusive top of the size ladder; 0 means
	// DefaultMRCMaxSizeBytes.
	MaxSizeBytes int `json:"max_size_bytes,omitempty"`
	// SetCounts selects the set-indexed geometry families (powers of
	// two; 1 = fully associative). Empty means fully associative only.
	SetCounts []int `json:"set_counts,omitempty"`
	// Shards bounds intra-pass parallelism (per-set stack sharding).
	// Excluded from JSON on purpose, like Options.Parallelism: it does
	// not change results, so it must not fragment coalescing or
	// result-cache keys.
	Shards int `json:"-"`
}

// Validate checks the request's geometry (the workload name is checked
// at execution time) and returns it normalized: defaults applied,
// SetCounts sorted and deduplicated. The normalized form is canonical
// — the fvcached service derives coalescing and result-cache keys
// from it.
func (r MRCRequest) Validate() (MRCRequest, error) {
	o, err := mrc.Options{
		LineBytes:    r.LineBytes,
		MaxSizeBytes: r.MaxSizeBytes,
		SetCounts:    r.SetCounts,
	}.Normalize()
	if err != nil {
		return r, err
	}
	r.LineBytes = o.LineBytes
	r.MaxSizeBytes = o.MaxSizeBytes
	r.SetCounts = o.SetCounts
	return r, nil
}

// LadderPoints returns how many (size, associativity) points a
// normalized request yields per set-count family; the curve shapes
// are fully determined by the request.
func (r MRCRequest) LadderPoints() []int {
	return mrc.Options{LineBytes: r.LineBytes, MaxSizeBytes: r.MaxSizeBytes, SetCounts: r.SetCounts}.LadderPoints()
}

// MissRateCurves runs one single-pass reuse-distance analysis over the
// workload's shared recording and returns the exact miss-rate curve of
// every requested LRU geometry family — the analytic replacement for a
// K-point size sweep wherever the geometry is pure set-indexed LRU
// (no FVC, no victim cache; those still need Measure/MeasureBatch).
// Miss counts are bit-identical to fused replays of each point.
func MissRateCurves(ctx context.Context, req MRCRequest) (*MRCResult, error) {
	w, err := workload.Get(req.Workload)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec, err := sim.Recordings.Get(w, req.Scale)
	if err != nil {
		return nil, err
	}
	return mrc.Analyze(rec, mrc.Options{
		LineBytes:    req.LineBytes,
		MaxSizeBytes: req.MaxSizeBytes,
		SetCounts:    req.SetCounts,
		Shards:       req.Shards,
		Ctx:          ctx,
	})
}

// CharacterizeRequest asks for a workload's value-locality profile.
type CharacterizeRequest struct {
	Workload string
	Scale    Scale
	// MRCLineBytes, when positive, additionally computes the
	// workload's fully-associative LRU miss-rate curve at that line
	// size (one extra Mattson pass) into Characterization.MRC.
	MRCLineBytes int
}

// Characterization summarizes a workload's frequent value locality
// (the paper's Section 2 measurements).
type Characterization struct {
	Workload string
	Scale    Scale
	// Accesses is the total number of loads and stores.
	Accesses uint64
	// DistinctValues counts distinct 32-bit values accessed.
	DistinctValues int
	// MRC is the fully-associative LRU miss-rate curve at the request's
	// MRCLineBytes (nil when the request left it zero): how the
	// workload's temporal locality translates to cache sizes, next to
	// the value locality above.
	MRC *MRCResult

	hist *trace.ValueHistogram
}

// CoverageOfTopK returns the fraction of accesses covered by the top
// k values, in [0,1].
func (c *Characterization) CoverageOfTopK(k int) float64 { return c.hist.CoverageOfTopK(k) }

// TopValues returns the k most frequently accessed values with their
// counts, most frequent first.
func (c *Characterization) TopValues(k int) []ValueCount { return c.hist.TopK(k) }

// Characterize measures a workload's frequent value locality from the
// shared recording, executing the workload at most once.
func Characterize(ctx context.Context, req CharacterizeRequest) (*Characterization, error) {
	w, err := workload.Get(req.Workload)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rec, err := sim.Recordings.Get(w, req.Scale)
	if err != nil {
		return nil, err
	}
	hist := trace.NewValueHistogram()
	rec.Replay(hist)
	c := &Characterization{
		Workload:       w.Name(),
		Scale:          req.Scale,
		Accesses:       hist.Total(),
		DistinctValues: hist.Distinct(),
		hist:           hist,
	}
	if req.MRCLineBytes > 0 {
		res, err := mrc.Analyze(rec, mrc.Options{LineBytes: req.MRCLineBytes, Ctx: ctx})
		if err != nil {
			return nil, err
		}
		c.MRC = res
	}
	return c, nil
}
