// Custom workload: implement your own program against the instrumented
// memory substrate, check whether it exhibits frequent value locality,
// and evaluate how much a frequent value cache would help it.
//
// The example program is a sparse-graph reachability sweep: adjacency
// bitmaps full of zeros and a visited array of 0/1 flags — exactly the
// kind of data the paper predicts benefits from value-centric caching.
package main

import (
	"fmt"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/memsim"
	"fvcache/internal/sim"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

// sparseGraph implements workload.Workload.
type sparseGraph struct{}

func (sparseGraph) Name() string        { return "sparsegraph" }
func (sparseGraph) Analogue() string    { return "(custom)" }
func (sparseGraph) FVL() bool           { return true }
func (sparseGraph) Description() string { return "BFS over adjacency bitmaps" }

func (sparseGraph) Run(env *memsim.Env, scale workload.Scale) {
	nodes := map[workload.Scale]int{
		workload.Test: 512, workload.Train: 1024, workload.Ref: 2048,
	}[scale]
	words := nodes / 32 // bitmap words per node

	adj := env.Static(nodes * words) // adjacency bitmaps, mostly zero
	visited := env.Static(nodes)     // 0/1 flags

	// Build a sparse ring-with-chords graph.
	setEdge := func(a, b int) {
		w := adj + uint32(a*words+b/32)*4
		env.Store(w, env.Load(w)|1<<uint32(b%32))
	}
	for i := 0; i < nodes; i++ {
		setEdge(i, (i+1)%nodes)
		if i%7 == 0 {
			setEdge(i, (i*13+5)%nodes)
		}
	}

	// Repeated BFS sweeps from different roots.
	queue := env.PushFrame(nodes)
	defer env.PopFrame()
	for root := 0; root < nodes; root += 64 {
		for i := 0; i < nodes; i++ {
			env.Store(visited+uint32(i)*4, 0)
		}
		head, tail := 0, 0
		env.Store(queue+uint32(tail)*4, uint32(root))
		tail++
		env.Store(visited+uint32(root)*4, 1)
		for head < tail {
			n := int(env.Load(queue + uint32(head)*4))
			head++
			for wi := 0; wi < words; wi++ {
				bits := env.Load(adj + uint32(n*words+wi)*4)
				for b := 0; bits != 0 && b < 32; b++ {
					if bits&(1<<uint32(b)) == 0 {
						continue
					}
					bits &^= 1 << uint32(b)
					m := wi*32 + b
					if env.Load(visited+uint32(m)*4) == 0 {
						env.Store(visited+uint32(m)*4, 1)
						env.Store(queue+uint32(tail)*4, uint32(m))
						tail++
					}
				}
			}
		}
	}
}

func main() {
	w := sparseGraph{}

	// Step 1: characterize — does it exhibit frequent value locality?
	hist := trace.NewValueHistogram()
	env := memsim.NewEnv(hist)
	w.Run(env, workload.Train)
	fmt.Printf("%s: %d accesses, %d distinct values\n", w.Name(), hist.Total(), hist.Distinct())
	for _, k := range []int{1, 3, 7, 10} {
		fmt.Printf("  top-%-2d values cover %5.1f%% of accesses\n", k, hist.CoverageOfTopK(k)*100)
	}

	// Step 2: evaluate an FVC against a plain cache across sizes.
	values := sim.ProfileTopAccessed(w, workload.Train, 7)
	for _, kb := range []int{4, 8, 16} {
		main := cache.Params{SizeBytes: kb << 10, LineBytes: 32, Assoc: 1}
		base, err := sim.Measure(w, workload.Train, core.Config{Main: main}, sim.MeasureOptions{})
		if err != nil {
			panic(err)
		}
		aug, err := sim.Measure(w, workload.Train, core.Config{
			Main:           main,
			FVC:            &fvc.Params{Entries: 256, LineBytes: 32, Bits: 3},
			FrequentValues: values,
		}, sim.MeasureOptions{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%2dKB DMC: %.3f%% -> +FVC256: %.3f%%  (reduction %.1f%%)\n",
			kb, base.Stats.MissRate()*100, aug.Stats.MissRate()*100,
			(base.Stats.MissRate()-aug.Stats.MissRate())/base.Stats.MissRate()*100)
	}
}
