// Custom workload: implement your own program against the instrumented
// memory substrate, register it, check whether it exhibits frequent
// value locality, and evaluate how much a frequent value cache would
// help it — all through the public fvcache package.
//
// The example program is a sparse-graph reachability sweep: adjacency
// bitmaps full of zeros and a visited array of 0/1 flags — exactly the
// kind of data the paper predicts benefits from value-centric caching.
package main

import (
	"context"
	"fmt"

	"fvcache"
)

// sparseGraph implements fvcache.Workload.
type sparseGraph struct{}

func (sparseGraph) Name() string        { return "sparsegraph" }
func (sparseGraph) Analogue() string    { return "(custom)" }
func (sparseGraph) FVL() bool           { return true }
func (sparseGraph) Description() string { return "BFS over adjacency bitmaps" }

func (sparseGraph) Run(env *fvcache.Env, scale fvcache.Scale) {
	nodes := map[fvcache.Scale]int{
		fvcache.Test: 512, fvcache.Train: 1024, fvcache.Ref: 2048,
	}[scale]
	words := nodes / 32 // bitmap words per node

	adj := env.Static(nodes * words) // adjacency bitmaps, mostly zero
	visited := env.Static(nodes)     // 0/1 flags

	// Build a sparse ring-with-chords graph.
	setEdge := func(a, b int) {
		w := adj + uint32(a*words+b/32)*4
		env.Store(w, env.Load(w)|1<<uint32(b%32))
	}
	for i := 0; i < nodes; i++ {
		setEdge(i, (i+1)%nodes)
		if i%7 == 0 {
			setEdge(i, (i*13+5)%nodes)
		}
	}

	// Repeated BFS sweeps from different roots.
	queue := env.PushFrame(nodes)
	defer env.PopFrame()
	for root := 0; root < nodes; root += 64 {
		for i := 0; i < nodes; i++ {
			env.Store(visited+uint32(i)*4, 0)
		}
		head, tail := 0, 0
		env.Store(queue+uint32(tail)*4, uint32(root))
		tail++
		env.Store(visited+uint32(root)*4, 1)
		for head < tail {
			n := int(env.Load(queue + uint32(head)*4))
			head++
			for wi := 0; wi < words; wi++ {
				bits := env.Load(adj + uint32(n*words+wi)*4)
				for b := 0; bits != 0 && b < 32; b++ {
					if bits&(1<<uint32(b)) == 0 {
						continue
					}
					bits &^= 1 << uint32(b)
					m := wi*32 + b
					if env.Load(visited+uint32(m)*4) == 0 {
						env.Store(visited+uint32(m)*4, 1)
						env.Store(queue+uint32(tail)*4, uint32(m))
						tail++
					}
				}
			}
		}
	}
}

func main() {
	ctx := context.Background()

	// Step 0: register the workload; every entry point (and the
	// fvcached service) can now run it by name.
	fvcache.RegisterWorkload(sparseGraph{})

	// Step 1: characterize — does it exhibit frequent value locality?
	c, err := fvcache.Characterize(ctx, fvcache.CharacterizeRequest{Workload: "sparsegraph", Scale: fvcache.Train})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d accesses, %d distinct values\n", c.Workload, c.Accesses, c.DistinctValues)
	for _, k := range []int{1, 3, 7, 10} {
		fmt.Printf("  top-%-2d values cover %5.1f%% of accesses\n", k, c.CoverageOfTopK(k)*100)
	}

	// Step 2: evaluate an FVC against a plain cache across sizes.
	values, err := fvcache.Profile(ctx, fvcache.ProfileRequest{Workload: "sparsegraph", Scale: fvcache.Train, K: 7})
	if err != nil {
		panic(err)
	}
	for _, kb := range []int{4, 8, 16} {
		main := fvcache.CacheParams{SizeBytes: kb << 10, LineBytes: 32, Assoc: 1}
		res, err := fvcache.MeasureBatch(ctx, fvcache.MeasureBatchRequest{
			Workload: "sparsegraph", Scale: fvcache.Train,
			Configs: []fvcache.Config{
				{Main: main},
				{
					Main:           main,
					FVC:            &fvcache.FVCParams{Entries: 256, LineBytes: 32, Bits: 3},
					FrequentValues: values,
				},
			},
		})
		if err != nil {
			panic(err)
		}
		base, aug := res[0].Stats, res[1].Stats
		fmt.Printf("%2dKB DMC: %.3f%% -> +FVC256: %.3f%%  (reduction %.1f%%)\n",
			kb, base.MissRate()*100, aug.MissRate()*100,
			(base.MissRate()-aug.MissRate())/base.MissRate()*100)
	}
}
