// Quickstart: simulate a workload on a plain direct-mapped cache, then
// augment it with a frequent value cache and compare miss rates — the
// paper's headline experiment in ~40 lines.
//
// Examples use only the public fvcache package; the internal engine
// behind it is not part of the API.
package main

import (
	"context"
	"fmt"

	"fvcache"
)

func main() {
	ctx := context.Background()
	scale := fvcache.Train
	main16 := fvcache.CacheParams{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}

	// 1. Baseline: a 16KB direct-mapped cache.
	base, err := fvcache.Measure(ctx, fvcache.MeasureRequest{
		Workload: "goboard", Scale: scale,
		Config: fvcache.Config{Main: main16},
	})
	if err != nil {
		panic(err)
	}

	// 2. Profile the workload's seven most frequently accessed values
	// (the paper's profile-directed FVT selection).
	values, err := fvcache.Profile(ctx, fvcache.ProfileRequest{Workload: "goboard", Scale: scale, K: 7})
	if err != nil {
		panic(err)
	}
	fmt.Print("frequent values:")
	for _, v := range values {
		fmt.Printf(" %#x", v)
	}
	fmt.Println()

	// 3. Augment the same cache with a 512-entry FVC (1.5KB of encoded
	// data) exploiting those values.
	aug, err := fvcache.Measure(ctx, fvcache.MeasureRequest{
		Workload: "goboard", Scale: scale,
		Config: fvcache.Config{
			Main:           main16,
			FVC:            &fvcache.FVCParams{Entries: 512, LineBytes: 32, Bits: 3},
			FrequentValues: values,
		},
	})
	if err != nil {
		panic(err)
	}

	w, _ := fvcache.LookupWorkload("goboard")
	b, a := base.Stats, aug.Stats
	fmt.Printf("workload %s (%s analogue), %d accesses\n", w.Name(), w.Analogue(), b.Accesses())
	fmt.Printf("  16KB DMC             miss rate %.3f%%  traffic %d KB\n",
		b.MissRate()*100, b.TrafficBytes()>>10)
	fmt.Printf("  16KB DMC + 1.5KB FVC miss rate %.3f%%  traffic %d KB  (FVC hits: %d)\n",
		a.MissRate()*100, a.TrafficBytes()>>10, a.FVCHits)
	fmt.Printf("  miss-rate reduction  %.1f%%\n",
		(b.MissRate()-a.MissRate())/b.MissRate()*100)
}
