// Quickstart: simulate a workload on a plain direct-mapped cache, then
// augment it with a frequent value cache and compare miss rates — the
// paper's headline experiment in ~40 lines.
package main

import (
	"fmt"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/sim"
	"fvcache/internal/workload"
)

func main() {
	w, err := workload.Get("goboard")
	if err != nil {
		panic(err)
	}
	scale := workload.Train
	main16 := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}

	// 1. Baseline: a 16KB direct-mapped cache.
	base, err := sim.Measure(w, scale, core.Config{Main: main16}, sim.MeasureOptions{})
	if err != nil {
		panic(err)
	}

	// 2. Profile the workload's seven most frequently accessed values
	// (the paper's profile-directed FVT selection).
	values := sim.ProfileTopAccessed(w, scale, 7)
	fmt.Print("frequent values:")
	for _, v := range values {
		fmt.Printf(" %#x", v)
	}
	fmt.Println()

	// 3. Augment the same cache with a 512-entry FVC (1.5KB of encoded
	// data) exploiting those values.
	aug, err := sim.Measure(w, scale, core.Config{
		Main:           main16,
		FVC:            &fvc.Params{Entries: 512, LineBytes: 32, Bits: 3},
		FrequentValues: values,
	}, sim.MeasureOptions{})
	if err != nil {
		panic(err)
	}

	b, a := base.Stats, aug.Stats
	fmt.Printf("workload %s (%s analogue), %d accesses\n", w.Name(), w.Analogue(), b.Accesses())
	fmt.Printf("  16KB DMC             miss rate %.3f%%  traffic %d KB\n",
		b.MissRate()*100, b.TrafficBytes()>>10)
	fmt.Printf("  16KB DMC + 1.5KB FVC miss rate %.3f%%  traffic %d KB  (FVC hits: %d)\n",
		a.MissRate()*100, a.TrafficBytes()>>10, a.FVCHits)
	fmt.Printf("  miss-rate reduction  %.1f%%\n",
		(b.MissRate()-a.MissRate())/b.MissRate()*100)
}
