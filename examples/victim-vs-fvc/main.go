// Victim cache vs frequent value cache: the paper's Figure 15
// comparison, including the CACTI access-time model that justifies the
// "equal access time" pairing (a 512-entry direct-mapped FVC is faster
// than a 4-entry fully-associative victim cache).
//
// Unlike the other examples, this one measures through a running
// fvcached service using the versioned fvcache/client SDK — the same
// client the fleet's own node-to-node forwarding uses. Start a server
// (or a fleet; any node of it works equally) and point -addr at it:
//
//	go run ./cmd/fvcached -addr 127.0.0.1:8080 &
//	go run ./examples/victim-vs-fvc -addr http://127.0.0.1:8080
//
// Profile-directed FVT selection happens server-side: a config asking
// for an FVC without explicit frequent_values makes the service derive
// the table from the workload's profile, so the client stays thin.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"fvcache"
	"fvcache/api"
	"fvcache/client"
)

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of a running fvcached")
	flag.Parse()

	m := fvcache.DefaultAccessTimes()
	fmt.Println("access times (0.8um model):")
	fmt.Printf("  4KB DMC:           %.1f ns\n",
		m.CacheAccessNs(fvcache.CacheParams{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1}))
	fmt.Printf("  4-entry VC (FA):   %.1f ns\n", m.VictimAccessNs(4, 32))
	fmt.Printf("  16-entry VC (FA):  %.1f ns\n", m.VictimAccessNs(16, 32))
	fmt.Printf("  128-entry FVC:     %.1f ns\n", m.FVCAccessNs(fvcache.FVCParams{Entries: 128, LineBytes: 32, Bits: 3}))
	fmt.Printf("  512-entry FVC:     %.1f ns\n", m.FVCAccessNs(fvcache.FVCParams{Entries: 512, LineBytes: 32, Bits: 3}))
	fmt.Println()

	cli, err := client.New(*addr, client.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := cli.Ready(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "no fvcached at %s (%v)\nstart one with: go run ./cmd/fvcached -addr 127.0.0.1:8080\n", *addr, err)
		os.Exit(1)
	}

	// One batched request per workload: the five interesting systems
	// measure as a single fused execution on the serving node (under a
	// fleet, on the configs' owner).
	const mainBytes = 4 << 10
	configs := []api.Config{
		{MainBytes: mainBytes},                    // baseline DMC
		{MainBytes: mainBytes, VictimEntries: 16}, // equal area
		{MainBytes: mainBytes, FVCEntries: 128},   // (profile-derived FVT)
		{MainBytes: mainBytes, VictimEntries: 4},  // equal access time
		{MainBytes: mainBytes, FVCEntries: 512},
	}
	fmt.Printf("%-10s %10s %12s %12s %12s %12s\n",
		"workload", "DMC miss%", "VC16", "FVC128", "VC4", "FVC512")
	for _, name := range []string{"goboard", "cpusim", "ccomp", "strproc"} {
		resp, err := cli.Measure(ctx, api.MeasureRequest{
			Workload: name, Scale: "train", Configs: configs,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "measure:", err)
			os.Exit(1)
		}
		base := resp.Results[0].MissRate * 100
		red := func(r api.Result) string {
			return fmt.Sprintf("-%.1f%%", (base-r.MissRate*100)/base*100)
		}
		fmt.Printf("%-10s %9.3f%% %12s %12s %12s %12s\n", name, base,
			red(resp.Results[1]), red(resp.Results[2]),
			red(resp.Results[3]), red(resp.Results[4]))
	}
	fmt.Println("\npaper: equal-size VC wins; equal-access-time FVC wins; both help small DMCs")
}
