// Victim cache vs frequent value cache: the paper's Figure 15
// comparison, including the CACTI access-time model that justifies the
// "equal access time" pairing (a 512-entry direct-mapped FVC is faster
// than a 4-entry fully-associative victim cache).
package main

import (
	"fmt"

	"fvcache/internal/cache"
	"fvcache/internal/cacti"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/sim"
	"fvcache/internal/workload"
)

func main() {
	m := cacti.Default08um()
	fmt.Println("access times (0.8um model):")
	fmt.Printf("  4KB DMC:           %.1f ns\n",
		m.CacheAccessNs(cache.Params{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1}))
	fmt.Printf("  4-entry VC (FA):   %.1f ns\n", m.VictimAccessNs(4, 32))
	fmt.Printf("  16-entry VC (FA):  %.1f ns\n", m.VictimAccessNs(16, 32))
	fmt.Printf("  128-entry FVC:     %.1f ns\n", m.FVCAccessNs(fvc.Params{Entries: 128, LineBytes: 32, Bits: 3}))
	fmt.Printf("  512-entry FVC:     %.1f ns\n", m.FVCAccessNs(fvc.Params{Entries: 512, LineBytes: 32, Bits: 3}))
	fmt.Println()

	main4 := cache.Params{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1}
	scale := workload.Train
	fmt.Printf("%-10s %10s %12s %12s %12s %12s\n",
		"workload", "DMC miss%", "VC16", "FVC128", "VC4", "FVC512")
	for _, name := range []string{"goboard", "cpusim", "ccomp", "strproc"} {
		w, err := workload.Get(name)
		if err != nil {
			panic(err)
		}
		values := sim.ProfileTopAccessed(w, scale, 7)
		missRate := func(cfg core.Config) float64 {
			res, err := sim.Measure(w, scale, cfg, sim.MeasureOptions{})
			if err != nil {
				panic(err)
			}
			return res.Stats.MissRate() * 100
		}
		withFVC := func(entries int) core.Config {
			return core.Config{
				Main:           main4,
				FVC:            &fvc.Params{Entries: entries, LineBytes: 32, Bits: 3},
				FrequentValues: values,
			}
		}
		base := missRate(core.Config{Main: main4})
		red := func(v float64) string {
			return fmt.Sprintf("-%.1f%%", (base-v)/base*100)
		}
		fmt.Printf("%-10s %9.3f%% %12s %12s %12s %12s\n", name, base,
			// Equal area: 16-entry VC vs 128-entry FVC.
			red(missRate(core.Config{Main: main4, VictimEntries: 16})),
			red(missRate(withFVC(128))),
			// Equal access time: 4-entry VC vs 512-entry FVC.
			red(missRate(core.Config{Main: main4, VictimEntries: 4})),
			red(missRate(withFVC(512))))
	}
	fmt.Println("\npaper: equal-size VC wins; equal-access-time FVC wins; both help small DMCs")
}
