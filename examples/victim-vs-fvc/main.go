// Victim cache vs frequent value cache: the paper's Figure 15
// comparison, including the CACTI access-time model that justifies the
// "equal access time" pairing (a 512-entry direct-mapped FVC is faster
// than a 4-entry fully-associative victim cache).
package main

import (
	"context"
	"fmt"

	"fvcache"
)

func main() {
	m := fvcache.DefaultAccessTimes()
	fmt.Println("access times (0.8um model):")
	fmt.Printf("  4KB DMC:           %.1f ns\n",
		m.CacheAccessNs(fvcache.CacheParams{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1}))
	fmt.Printf("  4-entry VC (FA):   %.1f ns\n", m.VictimAccessNs(4, 32))
	fmt.Printf("  16-entry VC (FA):  %.1f ns\n", m.VictimAccessNs(16, 32))
	fmt.Printf("  128-entry FVC:     %.1f ns\n", m.FVCAccessNs(fvcache.FVCParams{Entries: 128, LineBytes: 32, Bits: 3}))
	fmt.Printf("  512-entry FVC:     %.1f ns\n", m.FVCAccessNs(fvcache.FVCParams{Entries: 512, LineBytes: 32, Bits: 3}))
	fmt.Println()

	ctx := context.Background()
	main4 := fvcache.CacheParams{SizeBytes: 4 << 10, LineBytes: 32, Assoc: 1}
	scale := fvcache.Train
	fmt.Printf("%-10s %10s %12s %12s %12s %12s\n",
		"workload", "DMC miss%", "VC16", "FVC128", "VC4", "FVC512")
	for _, name := range []string{"goboard", "cpusim", "ccomp", "strproc"} {
		values, err := fvcache.Profile(ctx, fvcache.ProfileRequest{Workload: name, Scale: scale, K: 7})
		if err != nil {
			panic(err)
		}
		missRate := func(cfg fvcache.Config) float64 {
			res, err := fvcache.Measure(ctx, fvcache.MeasureRequest{Workload: name, Scale: scale, Config: cfg})
			if err != nil {
				panic(err)
			}
			return res.Stats.MissRate() * 100
		}
		withFVC := func(entries int) fvcache.Config {
			return fvcache.Config{
				Main:           main4,
				FVC:            &fvcache.FVCParams{Entries: entries, LineBytes: 32, Bits: 3},
				FrequentValues: values,
			}
		}
		base := missRate(fvcache.Config{Main: main4})
		red := func(v float64) string {
			return fmt.Sprintf("-%.1f%%", (base-v)/base*100)
		}
		fmt.Printf("%-10s %9.3f%% %12s %12s %12s %12s\n", name, base,
			// Equal area: 16-entry VC vs 128-entry FVC.
			red(missRate(fvcache.Config{Main: main4, VictimEntries: 16})),
			red(missRate(withFVC(128))),
			// Equal access time: 4-entry VC vs 512-entry FVC.
			red(missRate(fvcache.Config{Main: main4, VictimEntries: 4})),
			red(missRate(withFVC(512))))
	}
	fmt.Println("\npaper: equal-size VC wins; equal-access-time FVC wins; both help small DMCs")
}
