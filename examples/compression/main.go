// Compression: demonstrates the FVC's frequent-value encoding — the
// paper's Figure 7 — and measures how much storage the encoding saves
// on a real workload (the paper's Figure 11 analysis).
package main

import (
	"context"
	"fmt"

	"fvcache"
)

func main() {
	// --- Part 1: the encoding itself (paper Figure 7) ---
	// Seven frequent values in 3-bit codes; code 7 = "infrequent".
	table := fvcache.MustFVTable(3, []uint32{0, 0xffffffff, 1, 2, 4, 8, 10})
	line := []uint32{0, 1000, 0, 99999, 0xffffffff, 10, 1, 0xffffffff}

	fmt.Println("uncompressed 8-word line (256 bits):")
	fmt.Printf("  %v\n", line)
	fmt.Println("FVC encoding (24 bits):")
	fmt.Print("  codes:")
	for _, v := range line {
		code, ok := table.Encode(v)
		if ok {
			fmt.Printf(" %03b", code)
		} else {
			fmt.Printf(" %03b(escape)", code)
		}
	}
	fmt.Println()
	fmt.Println("  random access preserved: decode(code[6]) =",
		func() uint32 { c, _ := table.Encode(line[6]); return table.Decode(c) }())

	// --- Part 2: measured compression effectiveness (Figure 11) ---
	ctx := context.Background()
	for _, name := range []string{"goboard", "cpusim", "strproc"} {
		values, err := fvcache.Profile(ctx, fvcache.ProfileRequest{Workload: name, Scale: fvcache.Train, K: 7})
		if err != nil {
			panic(err)
		}
		res, err := fvcache.Measure(ctx, fvcache.MeasureRequest{
			Workload: name, Scale: fvcache.Train,
			Config: fvcache.Config{
				Main:           fvcache.CacheParams{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1},
				FVC:            &fvcache.FVCParams{Entries: 512, LineBytes: 32, Bits: 3},
				FrequentValues: values,
			},
			Options: fvcache.Options{SampleEvery: 50_000},
		})
		if err != nil {
			panic(err)
		}
		// A 32-byte line compresses to 3 bytes of codes; weighting by
		// how many codes actually name frequent values gives the
		// effective storage advantage over an uncompressed cache.
		factor := 32.0 / 3.0 * res.FVCFreqFrac
		fmt.Printf("\n%s: %.0f%% of FVC codes hold frequent values\n",
			name, res.FVCFreqFrac*100)
		fmt.Printf("  effective storage advantage vs DMC: %.2fx (paper reports ~4.27x at 40%%)\n", factor)
	}
}
