package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fvcache"
	"fvcache/api"
)

func asAPIError(err error, out **api.Error) bool { return errors.As(err, out) }

func TestNewValidatesBaseURL(t *testing.T) {
	for _, bad := range []string{"", "ftp://x", "http://", "not a url"} {
		if _, err := New(bad, Options{}); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
	cli, err := New("http://127.0.0.1:8080/", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cli.BaseURL() != "http://127.0.0.1:8080" {
		t.Errorf("base %q not normalized", cli.BaseURL())
	}
}

// TestStreamingDeliversLinesIncrementally proves the client surfaces
// each NDJSON line as it is flushed, not after the response completes:
// the server withholds the second line until the first point has been
// observed by the caller's callback.
func TestStreamingDeliversLinesIncrementally(t *testing.T) {
	firstSeen := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fl := w.(http.Flusher)
		fmt.Fprintln(w, `{"point":{"line_bytes":32,"cache_bytes":1024,"miss_rate":0.5}}`)
		fl.Flush()
		select {
		case <-firstSeen: // client really did receive line 1 already
		case <-time.After(10 * time.Second):
			t.Error("client never observed the first streamed point")
		}
		fmt.Fprintln(w, `{"point":{"line_bytes":32,"cache_bytes":2048,"miss_rate":0.25}}`)
		fmt.Fprintln(w, `{"summary":{"workload":"goboard","points":2}}`)
		fl.Flush()
	}))
	defer ts.Close()

	cli, err := New(ts.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var points []api.MRCPoint
	sum, err := cli.MRC(context.Background(), api.MRCRequest{Workload: "goboard"}, func(p api.MRCPoint) error {
		points = append(points, p)
		if len(points) == 1 {
			close(firstSeen)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 || sum == nil {
		t.Fatalf("got %d points, summary %v", len(points), sum)
	}
}

func TestRetryHonorsRetryAfterThenSucceeds(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(api.Error{Message: "overloaded", Reason: api.ReasonOverloaded, Retryable: true, TraceID: "t1"})
			return
		}
		json.NewEncoder(w).Encode(api.MeasureResponse{})
	}))
	defer ts.Close()

	cli, err := New(ts.URL, Options{RetryBase: time.Millisecond, RetrySeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Measure(context.Background(), api.MeasureRequest{Workload: "goboard"}); err != nil {
		t.Fatalf("expected success after retries: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d attempts, want 3 (2 rejections + success)", got)
	}
}

func TestTerminalErrorsAreNotRetried(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.Error{Message: "unknown workload", Reason: api.ReasonBadRequest, TraceID: "t2"})
	}))
	defer ts.Close()

	cli, err := New(ts.URL, Options{RetryBase: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cli.Measure(context.Background(), api.MeasureRequest{Workload: "no-such"})
	var ae *api.Error
	if !asAPIError(err, &ae) {
		t.Fatalf("error %T is not *api.Error: %v", err, err)
	}
	if ae.Status != 400 || ae.Reason != api.ReasonBadRequest || ae.TraceID != "t2" || ae.Temporary() {
		t.Errorf("bad terminal error: %+v", ae)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("terminal 400 was retried: %d attempts", got)
	}
}

func TestNoRetrySurfacesRejectionImmediately(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.Error{Message: "overloaded", Reason: api.ReasonOverloaded, Retryable: true})
	}))
	defer ts.Close()

	cli, err := New(ts.URL, Options{NoRetry: true})
	if err != nil {
		t.Fatal(err)
	}
	_, err = cli.Measure(context.Background(), api.MeasureRequest{Workload: "goboard"})
	var ae *api.Error
	if !asAPIError(err, &ae) || ae.Status != 429 || !ae.Temporary() {
		t.Fatalf("want 429 api error, got %v", err)
	}
	if ae.RetryAfter != time.Second {
		t.Errorf("Retry-After not parsed: %v", ae.RetryAfter)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("NoRetry client retried: %d attempts", got)
	}
}

// TestDeadlineAndHeaderPropagation: the context deadline is restated in
// the request body, and trace/forwarding headers reach the wire.
func TestDeadlineAndHeaderPropagation(t *testing.T) {
	type seen struct {
		deadlineMS int64
		traceID    string
		forwarded  string
		userAgent  string
	}
	got := make(chan seen, 1)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.MeasureRequest
		json.NewDecoder(r.Body).Decode(&req)
		got <- seen{
			deadlineMS: req.DeadlineMS,
			traceID:    r.Header.Get(api.HeaderRequestID),
			forwarded:  r.Header.Get(api.HeaderForwarded),
			userAgent:  r.Header.Get("User-Agent"),
		}
		json.NewEncoder(w).Encode(api.MeasureResponse{})
	}))
	defer ts.Close()

	cli, err := New(ts.URL, Options{ForwardedFrom: "http://origin:9001"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := cli.Measure(ctx, api.MeasureRequest{Workload: "goboard"}, WithTraceID("trace-42")); err != nil {
		t.Fatal(err)
	}
	s := <-got
	if s.deadlineMS <= 0 || s.deadlineMS > 5000 {
		t.Errorf("context deadline not propagated: DeadlineMS=%d", s.deadlineMS)
	}
	if s.traceID != "trace-42" {
		t.Errorf("trace ID %q", s.traceID)
	}
	if s.forwarded != "http://origin:9001" {
		t.Errorf("forwarding guard %q", s.forwarded)
	}
	if s.userAgent != "fvcache-client/"+api.Version {
		t.Errorf("user agent %q", s.userAgent)
	}
}

// TestStreamMidlineErrorSurfaces: a terminal error_line in the stream
// becomes the call's returned error.
func TestStreamMidlineErrorSurfaces(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"artifact":{"id":"figure-6","status":"done"}}`)
		fmt.Fprintln(w, `{"error_line":{"error":"disk melted","reason":"internal","retryable":false,"trace_id":"t3"}}`)
	}))
	defer ts.Close()

	cli, err := New(ts.URL, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	_, err = cli.Sweep(context.Background(), api.SweepRequest{}, func(ar fvcache.ArtifactResult) error {
		ids = append(ids, ar.ID)
		return nil
	})
	var ae *api.Error
	if !asAPIError(err, &ae) || ae.Message != "disk melted" || ae.TraceID != "t3" {
		t.Fatalf("mid-stream error not surfaced: %v", err)
	}
	if len(ids) != 1 || ids[0] != "figure-6" {
		t.Errorf("artifacts before failure lost: %v", ids)
	}
}
