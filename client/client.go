// Package client is the versioned Go SDK for the fvcached service: a
// thin, retrying HTTP client over the fvcache/api wire contract.
//
//	cli, err := client.New("http://127.0.0.1:8080", client.Options{})
//	resp, err := cli.Measure(ctx, api.MeasureRequest{Workload: "goboard"})
//
// Every call takes a context: its deadline bounds the call end to end
// and, when the request carries no explicit DeadlineMS of its own, is
// propagated to the server as the request deadline so server-side work
// is cancelled when the caller stops waiting.
//
// Retryable rejections (429 overloaded, 503 draining/breaker-open) are
// retried with jittered exponential backoff, honoring the server's
// Retry-After header; terminal errors (4xx, 504, 5xx) surface
// immediately as *api.Error. Streaming endpoints (/v1/sweep, /v1/mrc)
// retry only before the first streamed line.
//
// The SDK is consumed identically by external callers, by the
// cmd/serveload load generator, and by the fleet's own node-to-node
// owner-forwarding path inside fvcached (which sets the one-hop
// forwarding guard via Options.ForwardedFrom).
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"fvcache"
	"fvcache/api"
)

// Options configures a Client. The zero value is usable.
type Options struct {
	// HTTPClient is the transport (nil = a dedicated client with a
	// 2-minute overall timeout; per-call contexts bound individual
	// requests tighter).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first try on 429/503
	// and transport errors (<0 means 0; default 3 when the field is 0
	// and Retry is not disabled per call).
	MaxRetries int
	// NoRetry disables retries entirely (serveload uses it: a load
	// generator must observe rejections, not paper over them).
	NoRetry bool
	// RetryBase is the first backoff delay (default 100ms); RetryMax
	// caps the exponential growth (default 5s). The actual delay is
	// jittered uniformly in [d/2, 3d/2) and never below the server's
	// Retry-After.
	RetryBase time.Duration
	RetryMax  time.Duration
	// TraceID, when set, is sent as the X-Request-Id header on every
	// call without a per-call WithTraceID override.
	TraceID string
	// ForwardedFrom marks every request as node-to-node forwarded from
	// the given node URL (the X-Fvcache-Forwarded one-hop guard). Used
	// by the fleet's forwarding path; external callers leave it empty.
	ForwardedFrom string
	// UserAgent overrides the User-Agent header (default
	// "fvcache-client/<api version>").
	UserAgent string
	// RetrySeed seeds the backoff jitter (0 = time-seeded).
	RetrySeed int64
}

// Client is a versioned fvcached API client. Safe for concurrent use.
type Client struct {
	base string
	opt  Options
	hc   *http.Client

	mu  sync.Mutex
	rng *rand.Rand
}

// New validates baseURL and returns a Client for it.
func New(baseURL string, opt Options) (*Client, error) {
	u, err := url.Parse(strings.TrimSuffix(baseURL, "/"))
	if err != nil {
		return nil, fmt.Errorf("client: base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("client: base URL %q must be http or https", baseURL)
	}
	if u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q has no host", baseURL)
	}
	if opt.HTTPClient == nil {
		opt.HTTPClient = &http.Client{Timeout: 2 * time.Minute}
	}
	if opt.MaxRetries == 0 && !opt.NoRetry {
		opt.MaxRetries = 3
	}
	if opt.MaxRetries < 0 || opt.NoRetry {
		opt.MaxRetries = 0
	}
	if opt.RetryBase <= 0 {
		opt.RetryBase = 100 * time.Millisecond
	}
	if opt.RetryMax <= 0 {
		opt.RetryMax = 5 * time.Second
	}
	if opt.UserAgent == "" {
		opt.UserAgent = "fvcache-client/" + api.Version
	}
	seed := opt.RetrySeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Client{
		base: u.String(),
		opt:  opt,
		hc:   opt.HTTPClient,
		rng:  rand.New(rand.NewSource(seed)),
	}, nil
}

// BaseURL returns the client's normalized base URL.
func (c *Client) BaseURL() string { return c.base }

// CallOption adjusts one call.
type CallOption func(*callCfg)

type callCfg struct {
	traceID string
	noRetry bool
}

// WithTraceID sets the call's X-Request-Id header, propagating the
// caller's trace ID into the server's flight recorder (and, under
// forwarding, across nodes).
func WithTraceID(id string) CallOption { return func(cc *callCfg) { cc.traceID = id } }

// WithNoRetry disables retries for this call only.
func WithNoRetry() CallOption { return func(cc *callCfg) { cc.noRetry = true } }

// Measure runs POST /v1/measure.
func (c *Client) Measure(ctx context.Context, req api.MeasureRequest, opts ...CallOption) (*api.MeasureResponse, error) {
	req.DeadlineMS = c.effectiveDeadlineMS(ctx, req.DeadlineMS)
	var out api.MeasureResponse
	hdr, err := c.postJSON(ctx, "/"+api.Version+"/measure", req, &out, opts...)
	if err != nil {
		return nil, err
	}
	out.ForwardedBy = hdr.Get(api.HeaderForwardedBy)
	return &out, nil
}

// MRC runs POST /v1/mrc, invoking onPoint for every streamed curve
// point as it arrives (nil skips per-point delivery) and returning the
// trailing summary. A non-nil error from onPoint aborts the stream.
func (c *Client) MRC(ctx context.Context, req api.MRCRequest, onPoint func(api.MRCPoint) error, opts ...CallOption) (*api.MRCSummary, error) {
	req.DeadlineMS = c.effectiveDeadlineMS(ctx, req.DeadlineMS)
	var summary *api.MRCSummary
	hdr, err := c.postStream(ctx, "/"+api.Version+"/mrc", req, func(line []byte) error {
		var l api.MRCLine
		if err := json.Unmarshal(line, &l); err != nil {
			return fmt.Errorf("client: mrc stream line: %w", err)
		}
		switch {
		case l.Error != nil:
			return l.Error
		case l.Point != nil:
			if onPoint != nil {
				return onPoint(*l.Point)
			}
		case l.Summary != nil:
			summary = l.Summary
		}
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	if summary == nil {
		return nil, errors.New("client: mrc stream ended without a summary line")
	}
	summary.ForwardedBy = hdr.Get(api.HeaderForwardedBy)
	return summary, nil
}

// Sweep runs POST /v1/sweep, invoking onArtifact for every completed
// artifact as it streams (nil skips per-artifact delivery) and
// returning the trailing summary.
func (c *Client) Sweep(ctx context.Context, req api.SweepRequest, onArtifact func(fvcache.ArtifactResult) error, opts ...CallOption) (*fvcache.SweepResult, error) {
	var summary *fvcache.SweepResult
	_, err := c.postStream(ctx, "/"+api.Version+"/sweep", req, func(line []byte) error {
		var l api.SweepLine
		if err := json.Unmarshal(line, &l); err != nil {
			return fmt.Errorf("client: sweep stream line: %w", err)
		}
		switch {
		case l.Error != nil:
			return l.Error
		case l.Artifact != nil:
			if onArtifact != nil {
				return onArtifact(*l.Artifact)
			}
		case l.Summary != nil:
			summary = l.Summary
		}
		return nil
	}, opts...)
	if err != nil {
		return nil, err
	}
	if summary == nil {
		return nil, errors.New("client: sweep stream ended without a summary line")
	}
	return summary, nil
}

// Workloads runs GET /v1/workloads.
func (c *Client) Workloads(ctx context.Context, opts ...CallOption) ([]fvcache.WorkloadInfo, error) {
	var out struct {
		Workloads []fvcache.WorkloadInfo `json:"workloads"`
	}
	if _, err := c.getJSON(ctx, "/"+api.Version+"/workloads", &out, opts...); err != nil {
		return nil, err
	}
	return out.Workloads, nil
}

// Artifacts runs GET /v1/artifacts.
func (c *Client) Artifacts(ctx context.Context, opts ...CallOption) ([]fvcache.ArtifactInfo, error) {
	var out struct {
		Artifacts []fvcache.ArtifactInfo `json:"artifacts"`
	}
	if _, err := c.getJSON(ctx, "/"+api.Version+"/artifacts", &out, opts...); err != nil {
		return nil, err
	}
	return out.Artifacts, nil
}

// Ready runs GET /readyz and returns nil iff the node reports ready.
func (c *Client) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: %s not ready: %s", c.base, strings.TrimSpace(string(body)))
	}
	return nil
}

// MetricsJSON runs GET /debug/metrics?format=json and returns the raw
// telemetry snapshot. The fleet's /debug/metrics?fleet=1 aggregation
// fans out through this call.
func (c *Client) MetricsJSON(ctx context.Context) (json.RawMessage, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/debug/metrics?format=json", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, c.asError(resp, data)
	}
	return data, nil
}

// effectiveDeadlineMS propagates the context deadline into the wire
// request when the caller set no explicit one, so the server stops
// working when the client stops waiting.
func (c *Client) effectiveDeadlineMS(ctx context.Context, explicit int64) int64 {
	if explicit != 0 {
		return explicit
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// prepare builds one attempt's request.
func (c *Client) prepare(ctx context.Context, method, path string, body []byte, cc callCfg) (*http.Request, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("User-Agent", c.opt.UserAgent)
	id := cc.traceID
	if id == "" {
		id = c.opt.TraceID
	}
	if id != "" {
		req.Header.Set(api.HeaderRequestID, id)
	}
	if c.opt.ForwardedFrom != "" {
		req.Header.Set(api.HeaderForwarded, c.opt.ForwardedFrom)
	}
	return req, nil
}

// postJSON posts body and decodes a 2xx JSON response into out,
// retrying retryable rejections.
func (c *Client) postJSON(ctx context.Context, path string, body, out any, opts ...CallOption) (http.Header, error) {
	var cc callCfg
	for _, o := range opts {
		o(&cc)
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := c.prepare(ctx, http.MethodPost, path, buf, cc)
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
		} else {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				lastErr = rerr
			} else if resp.StatusCode/100 == 2 {
				if err := json.Unmarshal(data, out); err != nil {
					return nil, fmt.Errorf("client: decoding response: %w", err)
				}
				return resp.Header, nil
			} else {
				lastErr = c.asError(resp, data)
			}
		}
		if !c.shouldRetry(lastErr, attempt, cc) {
			return nil, lastErr
		}
		if err := c.backoff(ctx, attempt, lastErr); err != nil {
			return nil, lastErr
		}
	}
}

// getJSON gets path and decodes a 2xx JSON response into out.
func (c *Client) getJSON(ctx context.Context, path string, out any, opts ...CallOption) (http.Header, error) {
	var cc callCfg
	for _, o := range opts {
		o(&cc)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := c.prepare(ctx, http.MethodGet, path, nil, cc)
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
		} else {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				lastErr = rerr
			} else if resp.StatusCode/100 == 2 {
				if err := json.Unmarshal(data, out); err != nil {
					return nil, fmt.Errorf("client: decoding response: %w", err)
				}
				return resp.Header, nil
			} else {
				lastErr = c.asError(resp, data)
			}
		}
		if !c.shouldRetry(lastErr, attempt, cc) {
			return nil, lastErr
		}
		if err := c.backoff(ctx, attempt, lastErr); err != nil {
			return nil, lastErr
		}
	}
}

// postStream posts body and delivers each NDJSON line of a 2xx
// response to onLine as it arrives (the per-line flush on the server
// side is what makes delivery incremental). Retries happen only before
// the first line: once bytes have streamed, a failure surfaces as-is.
func (c *Client) postStream(ctx context.Context, path string, body any, onLine func([]byte) error, opts ...CallOption) (http.Header, error) {
	var cc callCfg
	for _, o := range opts {
		o(&cc)
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := c.prepare(ctx, http.MethodPost, path, buf, cc)
		if err != nil {
			return nil, err
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = err
		} else if resp.StatusCode/100 != 2 {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			lastErr = c.asError(resp, data)
		} else {
			sc := bufio.NewScanner(resp.Body)
			sc.Buffer(make([]byte, 64<<10), 16<<20)
			for sc.Scan() {
				line := bytes.TrimSpace(sc.Bytes())
				if len(line) == 0 {
					continue
				}
				if err := onLine(line); err != nil {
					resp.Body.Close()
					return nil, err
				}
			}
			scanErr := sc.Err()
			resp.Body.Close()
			if scanErr != nil {
				return nil, fmt.Errorf("client: reading stream: %w", scanErr)
			}
			return resp.Header, nil
		}
		if !c.shouldRetry(lastErr, attempt, cc) {
			return nil, lastErr
		}
		if err := c.backoff(ctx, attempt, lastErr); err != nil {
			return nil, lastErr
		}
	}
}

// asError converts a non-2xx response into an *api.Error, synthesizing
// an envelope when the body does not carry one (a proxy in the way, a
// pre-envelope server).
func (c *Client) asError(resp *http.Response, body []byte) error {
	e := &api.Error{Status: resp.StatusCode}
	if err := json.Unmarshal(body, e); err != nil || e.Message == "" {
		e.Message = strings.TrimSpace(string(body))
		if e.Message == "" {
			e.Message = resp.Status
		}
		e.Retryable = resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		if e.Reason == "" {
			e.Reason = api.ReasonInternal
		}
	}
	if e.TraceID == "" {
		e.TraceID = resp.Header.Get(api.HeaderRequestID)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// shouldRetry decides whether attempt+1 is worth trying: transport
// errors and 429/503 envelopes are, terminal statuses (4xx, 504) and
// context expiry are not.
func (c *Client) shouldRetry(err error, attempt int, cc callCfg) bool {
	if cc.noRetry || attempt >= c.opt.MaxRetries {
		return false
	}
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *api.Error
	if errors.As(err, &ae) {
		return ae.Retryable &&
			(ae.Status == http.StatusTooManyRequests || ae.Status == http.StatusServiceUnavailable)
	}
	return true // transport error: the request may never have arrived
}

// backoff sleeps the jittered exponential delay for attempt, floored
// by the server's Retry-After when the error carries one, and bounded
// by ctx.
func (c *Client) backoff(ctx context.Context, attempt int, cause error) error {
	d := c.opt.RetryBase << uint(attempt)
	if d > c.opt.RetryMax {
		d = c.opt.RetryMax
	}
	c.mu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d)))
	c.mu.Unlock()
	var ae *api.Error
	if errors.As(cause, &ae) && ae.RetryAfter > jittered {
		jittered = ae.RetryAfter
	}
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
