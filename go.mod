module fvcache

go 1.22
