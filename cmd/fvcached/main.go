// Command fvcached is the long-lived simulation service: an HTTP/JSON
// front end over the fvcache measurement engine for many concurrent
// clients.
//
//	fvcached -addr 127.0.0.1:8080
//
//	POST /v1/measure    measure one or many configurations over a workload
//	                    (?deadline_ms= bounds the request; expired -> 504)
//	POST /v1/sweep      reproduce paper artifacts (streams JSON lines)
//	GET  /v1/workloads  list registered workloads
//	GET  /v1/artifacts  list reproducible artifacts
//	GET  /healthz       liveness (200 while the process serves HTTP)
//	GET  /readyz        readiness (503 during boot recovery and drain)
//	GET  /debug/metrics telemetry in Prometheus text format
//	                    (?format=json for the snapshot, ?fleet=1 for the
//	                    fleet-merged view)
//	GET  /debug/fleet   ring layout, per-peer health, ownership counters
//	GET  /debug/requests flight recorder: recent request traces as JSON
//	                    (?n= count, ?slowest=K, ?errors=1 filters)
//
// With -peers the process joins a static consistent-hash fleet:
//
//	fvcached -addr 127.0.0.1:9001 \
//	  -peers http://127.0.0.1:9001,http://127.0.0.1:9002,http://127.0.0.1:9003
//
// Each (workload, scale, config) key is owned by exactly one node;
// requests landing elsewhere are proxied to the owner (one hop max),
// and an unreachable owner degrades to local execution.
//
// Requests for the same workload and scale arriving within the
// coalescing window are fused into a single batch replay; the "batch"
// stanza of each response reports how a request was executed. When the
// batch queue is full new requests are rejected with 429. SIGINT or
// SIGTERM drains gracefully: in-flight requests complete, then the
// process exits.
//
// Results are cached in memory, and durably under -cache-dir: repeat
// measurements are O(1), survive restarts, and every on-disk entry is
// CRC-validated on read — corrupt or torn entries are quarantined to
// <cache-dir>/corrupt and recomputed, never served. The boot recovery
// scan runs while /readyz reports 503; a failing disk (ENOSPC, I/O
// errors) degrades the cache to memory-only instead of taking the
// service down.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"fvcache/internal/fleet"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
	"fvcache/internal/resultcache"
	"fvcache/internal/serve"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (host:port, :0 picks a free port)")
		queue      = flag.Int("queue", 64, "batch queue depth (full queue rejects with 429)")
		window     = flag.Duration("coalesce", 10*time.Millisecond, "coalescing window for same-workload requests")
		reqLimit   = flag.Duration("request-timeout", 120*time.Second, "per-batch execution deadline")
		drain      = flag.Duration("drain", 30*time.Second, "graceful shutdown deadline")
		cacheDir   = flag.String("cache-dir", "", "durable result cache directory (empty = memory-only cache)")
		cacheMemMB = flag.Int("cache-mem-mb", 64, "result cache memory tier budget in MiB")
		cacheDisk  = flag.Int("cache-disk-mb", 256, "result cache disk tier budget in MiB")
		deadlineMS = flag.Int64("deadline-ms", 0, "default per-request deadline in ms (0 = none; requests may override with deadline_ms)")
		traceRing  = flag.Int("trace-ring", 256, "flight-recorder capacity: most recent N request traces kept for /debug/requests")
		peers      = flag.String("peers", "", "comma-separated peer URLs forming a consistent-hash fleet (empty = single node); self is derived from -addr unless -self is set")
		selfURL    = flag.String("self", "", "this node's advertised base URL (default http://<resolved -addr>)")
	)
	cf := harness.AddCommonFlags(flag.CommandLine, harness.FlagWorkers|harness.FlagTimeout, "")
	of := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if err := of.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "fvcached:", err)
		return harness.ExitUsage
	}
	defer func() {
		if err := of.Stop(); err != nil && code == harness.ExitOK {
			fmt.Fprintln(os.Stderr, "fvcached: telemetry:", err)
			code = harness.ExitFailure
		}
	}()

	ctx, cancel := cf.Context(context.Background())
	defer cancel()

	// Listen before building the server: with -addr :0 the fleet self
	// identity is only known once the port is bound.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fvcached:", err)
		return harness.ExitFailure
	}

	var fl *fleet.Fleet
	if *peers != "" {
		self := *selfURL
		if self == "" {
			self = "http://" + ln.Addr().String()
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		fl, err = fleet.New(fleet.Options{Self: self, Peers: peerList})
		if err != nil {
			ln.Close()
			fmt.Fprintln(os.Stderr, "fvcached:", err)
			return harness.ExitUsage
		}
		obs.Log.Info("fleet membership", "self", fl.SelfURL(), "size", fmt.Sprint(fl.Size()))
	}

	sv := serve.New(serve.Options{
		Workers: cf.Workers,
		// -workers also sets the chunk-parallel replay width of each
		// batch execution (0 lets serve default it to the pool size).
		ReplayParallelism: cf.Workers,
		QueueDepth:        *queue,
		CoalesceWindow:    *window,
		RequestTimeout:    *reqLimit,
		DefaultDeadline:   time.Duration(*deadlineMS) * time.Millisecond,
		TraceRing:         *traceRing,
		StartUnready:      true, // ready once the cache recovery scan finishes
		Fleet:             fl,
	})
	httpSrv := &http.Server{Handler: sv.Handler()}
	fmt.Printf("fvcached listening on %s\n", ln.Addr())
	obs.Log.Info("fvcached up", "addr", ln.Addr().String())

	// Open the result cache while the listener is already accepting:
	// /readyz reports 503 until the boot recovery scan (quarantining any
	// torn or corrupt entries a crash left behind) finishes. An unusable
	// cache directory degrades to a memory-only cache — never an outage.
	go func() {
		opt := resultcache.Options{
			Dir:       *cacheDir,
			MemBytes:  int64(*cacheMemMB) << 20,
			DiskBytes: int64(*cacheDisk) << 20,
		}
		rc, err := resultcache.Open(opt)
		if err != nil {
			obs.Log.Warn("result cache unavailable, serving without durable tier", "dir", *cacheDir, "err", err.Error())
			opt.Dir = ""
			if rc, err = resultcache.Open(opt); err != nil {
				obs.Log.Warn("memory result cache unavailable, serving uncached", "err", err.Error())
			}
		}
		if rc != nil {
			st := rc.Stats()
			obs.Log.Info("result cache ready", "dir", *cacheDir,
				"entries", st.DiskEntries, "quarantined", st.Quarantined)
			sv.SetResultCache(rc)
		}
		sv.SetReady(true)
		fmt.Println("fvcached ready")
	}()

	// Drain on signal: flush coalescing windows and finish queued
	// batches first (handlers blocked on results unblock), then close
	// the listener once every handler has written its response.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		dctx, dcancel := context.WithTimeout(context.Background(), *drain)
		defer dcancel()
		if err := sv.Shutdown(dctx); err != nil {
			obs.Log.Warn("drain incomplete", "err", err.Error())
		}
		if err := httpSrv.Shutdown(dctx); err != nil {
			obs.Log.Warn("http shutdown", "err", err.Error())
		}
	}()

	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "fvcached:", err)
		return harness.ExitFailure
	}
	<-drained
	fmt.Println("fvcached drained")
	return harness.ExitOK
}
