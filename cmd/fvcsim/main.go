// Command fvcsim simulates one cache configuration over one workload
// and prints hierarchy statistics.
//
// Usage:
//
//	fvcsim -workload goboard -scale ref -size 16384 -line 32 \
//	       -fvc-entries 512 -fvc-bits 3
//
// With -fvc-entries 0 and -victim 0 it simulates a plain main cache.
// The frequent value table is filled by a profiling pre-pass over the
// same workload and input. With -audit N the simulator re-checks the
// hierarchy's structural invariants every N accesses and aborts with a
// diagnostic if one is violated.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"fvcache"
	"fvcache/internal/energy"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
	"fvcache/internal/report"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		wlName     = flag.String("workload", "goboard", "workload name (see -list)")
		size       = flag.Int("size", 16<<10, "main cache size in bytes")
		line       = flag.Int("line", 32, "line size in bytes")
		assoc      = flag.Int("assoc", 1, "main cache associativity")
		fvcEntries = flag.Int("fvc-entries", 0, "FVC entries (0 = no FVC)")
		fvcBits    = flag.Int("fvc-bits", 3, "FVC code bits (1..3: top 1/3/7 values)")
		victim     = flag.Int("victim", 0, "victim cache entries (0 = none)")
		verify     = flag.Bool("verify", false, "enable value-verification asserts")
		audit      = flag.Uint64("audit", 0, "audit hierarchy invariants every N accesses (0 = off)")
		list       = flag.Bool("list", false, "list workloads and exit")
		fvtMode    = flag.String("fvt", "profiled", "FVT selection: profiled (pre-pass) or online (Space-Saving sketch)")
		showEnergy = flag.Bool("energy", false, "print an energy estimate (0.8um model)")
	)
	cf := harness.AddCommonFlags(flag.CommandLine, harness.FlagScale|harness.FlagTimeout, "ref")
	of := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		t := report.NewTable("Workloads", "name", "analogue", "fvl", "description")
		for _, w := range fvcache.Workloads() {
			t.AddRow(w.Name, w.Analogue, fmt.Sprint(w.FVL), w.Description)
		}
		t.Render(os.Stdout)
		return harness.ExitOK
	}

	if _, err := fvcache.LookupWorkload(*wlName); err != nil {
		return usage(err)
	}
	scale, err := cf.Scale()
	if err != nil {
		return usage(err)
	}
	if err := of.Start(); err != nil {
		return usage(err)
	}
	defer func() {
		if serr := of.Stop(); serr != nil && code == harness.ExitOK {
			fmt.Fprintln(os.Stderr, "fvcsim: telemetry:", serr)
			code = harness.ExitFailure
		}
	}()

	ctx, cancel := cf.Context(context.Background())
	defer cancel()

	cfg := fvcache.Config{
		Main:          fvcache.CacheParams{SizeBytes: *size, LineBytes: *line, Assoc: *assoc},
		VictimEntries: *victim,
	}
	if *fvcEntries > 0 {
		cfg.FVC = &fvcache.FVCParams{Entries: *fvcEntries, LineBytes: *line, Bits: *fvcBits}
		switch *fvtMode {
		case "online":
			cfg.OnlineFVTEvery = 100_000
			fmt.Println("online FVT identification (Space-Saving sketch, update every 100k accesses)")
		case "profiled":
			k := fvcache.MaxFVTValues(*fvcBits)
			fmt.Printf("profiling %s/%s for top %d values...\n", *wlName, scale, k)
			cfg.FrequentValues, err = fvcache.Profile(ctx, fvcache.ProfileRequest{Workload: *wlName, Scale: scale, K: k})
			if err != nil {
				return harness.ReportRunError(os.Stderr, "fvcsim", err)
			}
			fmt.Printf("frequent values:")
			for _, v := range cfg.FrequentValues {
				fmt.Printf(" %#x", v)
			}
			fmt.Println()
		default:
			return usage(fmt.Errorf("unknown -fvt mode %q (want profiled or online)", *fvtMode))
		}
	}
	if err := cfg.Validate(); err != nil {
		return usage(err)
	}

	var res fvcache.MeasureResult
	err = harness.Run(ctx, func(ctx context.Context) error {
		// The facade measures from the shared recording cache: with
		// -fvt profiled the profiling pre-pass already populated it, so
		// the workload executes exactly once per invocation.
		span := obs.Begin("measure:" + *wlName)
		defer span.Done()
		var merr error
		res, merr = fvcache.Measure(ctx, fvcache.MeasureRequest{
			Workload: *wlName,
			Scale:    scale,
			Config:   cfg,
			Options: fvcache.Options{
				VerifyValues: *verify,
				SampleEvery:  100_000,
				AuditEvery:   *audit,
			},
		})
		return merr
	})
	if err != nil {
		return harness.ReportRunError(os.Stderr, "fvcsim", err)
	}
	st := res.Stats

	rspan := obs.Begin("report")
	defer rspan.Done()
	t := report.NewTable(fmt.Sprintf("%s @ %s — main %s", *wlName, scale, cfg.Main), "metric", "value")
	t.AddRow("accesses", fmt.Sprintf("%d (loads %d, stores %d)", st.Accesses(), st.Loads, st.Stores))
	t.AddRow("main hits", fmt.Sprintf("%d", st.MainHits))
	if cfg.FVC != nil {
		t.AddRow("fvc hits", fmt.Sprintf("%d", st.FVCHits))
		t.AddRow("fvc write-miss allocs", fmt.Sprintf("%d", st.WriteMissAllocs))
		t.AddRow("fvc frequent content", report.Pct(res.FVCFreqFrac))
		t.AddRow("fvc geometry", fmt.Sprintf("%s (%.3gKB encoded data)", cfg.FVC, cfg.FVC.DataSizeBytes()/1024))
	}
	if cfg.VictimEntries > 0 {
		t.AddRow("victim hits", fmt.Sprintf("%d", st.VictimHits))
	}
	t.AddRow("misses", fmt.Sprintf("%d", st.Misses))
	t.AddRow("miss rate", fmt.Sprintf("%.4f%%", st.MissRate()*100))
	t.AddRow("line fetches", fmt.Sprintf("%d", st.LineFetches))
	t.AddRow("line writebacks", fmt.Sprintf("%d", st.LineWritebacks))
	t.AddRow("fvc writeback words", fmt.Sprintf("%d", st.FVCWritebackWords))
	if cfg.OnlineFVTEvery > 0 {
		t.AddRow("fvt updates", fmt.Sprintf("%d", st.FVTUpdates))
	}
	t.AddRow("traffic", fmt.Sprintf("%d words (%d bytes)", st.TrafficWords, st.TrafficBytes()))
	if *showEnergy {
		est := energy.Default08um().Estimate(cfg, st)
		t.AddRow("energy", fmt.Sprintf("%.2f uJ (off-chip %.2f uJ)", est.TotalNJ()/1000, est.OffChipNJ/1000))
	}
	t.Render(os.Stdout)
	return harness.ExitOK
}

func usage(err error) int {
	fmt.Fprintln(os.Stderr, "fvcsim:", err)
	return harness.ExitUsage
}
