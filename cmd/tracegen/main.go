// Command tracegen records a workload's memory trace to a compact
// binary file, inspects existing traces, and replays them through a
// cache configuration.
//
// Usage:
//
//	tracegen -workload ccomp -scale test -o ccomp.fvt     # record
//	tracegen -stats ccomp.fvt                             # inspect
//	tracegen -replay ccomp.fvt -size 16384 -line 32       # simulate
//
// A corrupt trace file is reported with the byte offset and event
// index of the damage instead of crashing the process.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
	"fvcache/internal/report"
	"fvcache/internal/sim"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		wlName    = flag.String("workload", "", "workload to record")
		outPath   = flag.String("o", "trace.fvt", "output trace file")
		statsPath = flag.String("stats", "", "print statistics of an existing trace")
		replay    = flag.String("replay", "", "replay a trace through a cache")
		size      = flag.Int("size", 16<<10, "replay: main cache size in bytes")
		line      = flag.Int("line", 32, "replay: line size in bytes")
		assoc     = flag.Int("assoc", 1, "replay: associativity")
	)
	cf := harness.AddCommonFlags(flag.CommandLine, harness.FlagScale|harness.FlagTimeout, "test")
	of := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	var cmd func() error
	switch {
	case *statsPath != "":
		cmd = func() error { return statsCmd(*statsPath) }
	case *replay != "":
		cmd = func() error { return replayCmd(*replay, *size, *line, *assoc) }
	case *wlName != "":
		cmd = func() error { return recordCmd(*wlName, cf.ScaleName, *outPath) }
	default:
		flag.Usage()
		return harness.ExitUsage
	}

	if err := of.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		return harness.ExitUsage
	}
	defer func() {
		if err := of.Stop(); err != nil && code == harness.ExitOK {
			fmt.Fprintln(os.Stderr, "tracegen: telemetry:", err)
			code = harness.ExitFailure
		}
	}()

	ctx, cancel := cf.Context(context.Background())
	defer cancel()
	err := harness.Run(ctx, func(context.Context) error { return cmd() })
	return harness.ReportRunError(os.Stderr, "tracegen", err)
}

func recordCmd(wlName, scaleName, outPath string) error {
	w, err := workload.Get(wlName)
	if err != nil {
		return err
	}
	scale, err := workload.ParseScale(scaleName)
	if err != nil {
		return err
	}
	// Record in memory first (a workload panic then aborts before the
	// output file is touched), then spill the recording in one pass.
	rec, err := sim.Record(w, scale)
	if err != nil {
		return err
	}
	span := obs.Begin("spill:" + outPath)
	defer span.Done()
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := rec.WriteTo(f)
	if err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d events (%d accesses) to %s (%d bytes, %.2f bytes/event)\n",
		n, rec.Accesses(), outPath, info.Size(), float64(info.Size())/float64(n))
	return nil
}

func openTrace(path string) (*trace.Reader, *os.File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	r, err := trace.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return r, f, nil
}

func statsCmd(path string) error {
	span := obs.Begin("stats:" + path)
	defer span.Done()
	r, f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	st := trace.NewStats()
	hist := trace.NewValueHistogram()
	n, err := r.Drain(trace.MultiSink(st, hist))
	if err != nil {
		return err
	}
	t := report.NewTable(fmt.Sprintf("trace %s", path), "metric", "value")
	t.AddRow("events", fmt.Sprintf("%d", n))
	t.AddRow("accesses", fmt.Sprintf("%d (ld %d / st %d)", st.Accesses(), st.Loads, st.Stores))
	t.AddRow("footprint", fmt.Sprintf("%d bytes (%d words)", st.Footprint(), st.UniqueAddrs()))
	t.AddRow("distinct values", fmt.Sprintf("%d", st.UniqueValues()))
	for _, k := range []int{1, 3, 7, 10} {
		t.AddRow(fmt.Sprintf("top-%d access coverage", k), report.Pct(hist.CoverageOfTopK(k)))
	}
	top := hist.TopK(10)
	for i, vc := range top {
		t.AddRow(fmt.Sprintf("top value #%d", i+1), fmt.Sprintf("%#x (%d accesses)", vc.Value, vc.Count))
	}
	t.Render(os.Stdout)
	return nil
}

func replayCmd(path string, size, line, assoc int) error {
	span := obs.Begin("replay:" + path)
	defer span.Done()
	r, f, err := openTrace(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sys, err := core.New(core.Config{Main: cache.Params{SizeBytes: size, LineBytes: line, Assoc: assoc}})
	if err != nil {
		return err
	}
	if _, err := r.Drain(sys); err != nil {
		return err
	}
	st := sys.Stats()
	fmt.Printf("%s over %s: accesses=%d misses=%d missrate=%.4f%% traffic=%dB\n",
		path, sys.Config().Main, st.Accesses(), st.Misses, st.MissRate()*100, st.TrafficBytes())
	return nil
}
