// Command fvlstudy runs the paper's Section 2 characterization study —
// Figures 1-5 and Tables 1-4 — over the synthetic workload suite.
//
// Usage:
//
//	fvlstudy                 # full study on reference inputs
//	fvlstudy -scale test     # quick pass on small inputs
//	fvlstudy -only tab4,fig1 # selected artifacts
//
// A failing artifact is reported in the final summary while the rest
// of the study still completes; the binary then exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fvcache/internal/experiments"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
	"fvcache/internal/workload"
)

var studyIDs = []string{"fig1", "fig2", "fig3", "fig4", "fig5", "tab1", "tab2", "tab3", "tab4"}

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		scaleName = flag.String("scale", "ref", "input scale: test, train or ref")
		only      = flag.String("only", "", "comma-separated artifact ids (default: all of section 2)")
		workers   = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
		timeout   = flag.Duration("timeout", 0, "abort the study after this duration (0 = none)")
	)
	of := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	scale, err := workload.ParseScale(*scaleName)
	if err != nil {
		return usage(err)
	}
	if err := of.Start(); err != nil {
		return usage(err)
	}
	defer func() {
		if err := of.Stop(); err != nil && code == harness.ExitOK {
			fmt.Fprintln(os.Stderr, "fvlstudy: telemetry:", err)
			code = harness.ExitFailure
		}
	}()
	ids := studyIDs
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	var todo []experiments.Experiment
	for _, id := range ids {
		e, err := experiments.Get(strings.TrimSpace(id))
		if err != nil {
			return usage(err)
		}
		todo = append(todo, e)
	}

	ctx, cancel := harness.SignalContext(context.Background(), *timeout)
	defer cancel()

	opt := experiments.Options{Scale: scale, Workers: *workers}
	tasks := make([]harness.Task, 0, len(todo))
	for _, e := range todo {
		e := e
		tasks = append(tasks, harness.Task{
			ID:    e.ID,
			Title: e.Title,
			Run: func(ctx context.Context, out io.Writer) error {
				o := opt
				o.Ctx = ctx
				fmt.Fprintf(out, "== %s: %s ==\n\n", e.ID, e.Title)
				if err := e.Run(o, out); err != nil {
					return err
				}
				_, err := fmt.Fprintln(out)
				return err
			},
		})
	}

	summary := harness.RunSweep(ctx, tasks, harness.SweepOptions{
		Stdout: os.Stdout,
		Log:    os.Stderr,
	})
	summary.Print(os.Stderr)
	if !summary.OK() {
		return harness.ExitFailure
	}
	return harness.ExitOK
}

func usage(err error) int {
	fmt.Fprintln(os.Stderr, "fvlstudy:", err)
	return harness.ExitUsage
}
