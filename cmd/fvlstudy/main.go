// Command fvlstudy runs the paper's Section 2 characterization study —
// Figures 1-5 and Tables 1-4 — over the synthetic workload suite.
//
// Usage:
//
//	fvlstudy                 # full study on reference inputs
//	fvlstudy -scale test     # quick pass on small inputs
//	fvlstudy -only tab4,fig1 # selected artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fvcache/internal/experiments"
	"fvcache/internal/workload"
)

var studyIDs = []string{"fig1", "fig2", "fig3", "fig4", "fig5", "tab1", "tab2", "tab3", "tab4"}

func main() {
	var (
		scaleName = flag.String("scale", "ref", "input scale: test, train or ref")
		only      = flag.String("only", "", "comma-separated artifact ids (default: all of section 2)")
		workers   = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
	)
	flag.Parse()

	scale, err := workload.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	ids := studyIDs
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	opt := experiments.Options{Scale: scale, Workers: *workers}
	for _, id := range ids {
		e, err := experiments.Get(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== %s: %s ==\n\n", e.ID, e.Title)
		if err := e.Run(opt, os.Stdout); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fvlstudy:", err)
	os.Exit(1)
}
