// Command fvlstudy runs the paper's Section 2 characterization study —
// Figures 1-5 and Tables 1-4 — over the synthetic workload suite.
//
// Usage:
//
//	fvlstudy                 # full study on reference inputs
//	fvlstudy -scale test     # quick pass on small inputs
//	fvlstudy -only tab4,fig1 # selected artifacts
//
// A failing artifact is reported in the final summary while the rest
// of the study still completes; the binary then exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"fvcache"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
)

var studyIDs = []string{"fig1", "fig2", "fig3", "fig4", "fig5", "tab1", "tab2", "tab3", "tab4"}

func main() {
	os.Exit(run())
}

func run() (code int) {
	only := flag.String("only", "", "comma-separated artifact ids (default: all of section 2)")
	cf := harness.AddCommonFlags(flag.CommandLine,
		harness.FlagScale|harness.FlagWorkers|harness.FlagTimeout, "ref")
	of := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	scale, err := cf.Scale()
	if err != nil {
		return usage(err)
	}
	if err := of.Start(); err != nil {
		return usage(err)
	}
	defer func() {
		if err := of.Stop(); err != nil && code == harness.ExitOK {
			fmt.Fprintln(os.Stderr, "fvlstudy: telemetry:", err)
			code = harness.ExitFailure
		}
	}()
	ids := studyIDs
	if *only != "" {
		ids = strings.Split(*only, ",")
	}

	ctx, cancel := cf.Context(context.Background())
	defer cancel()

	res, err := fvcache.Sweep(ctx, fvcache.SweepRequest{
		Artifacts: ids,
		Scale:     scale,
		Workers:   cf.Workers,
		Stdout:    os.Stdout,
		Log:       os.Stderr,
	})
	if err != nil {
		return usage(err)
	}
	res.PrintSummary(os.Stderr)
	if !res.OK() {
		return harness.ExitFailure
	}
	return harness.ExitOK
}

func usage(err error) int {
	fmt.Fprintln(os.Stderr, "fvlstudy:", err)
	return harness.ExitUsage
}
