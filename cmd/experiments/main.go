// Command experiments regenerates every table and figure of the
// paper's evaluation (and the Section 2 study).
//
// Usage:
//
//	experiments                  # everything, reference inputs
//	experiments -only fig13      # one artifact
//	experiments -scale train     # smaller inputs
//	experiments -out results/    # one file per artifact, resumable
//
// The sweep is fault tolerant: a failing artifact is reported in the
// final summary (with its recovered stack trace, if it panicked) while
// the remaining artifacts still complete, and the binary exits
// non-zero. In -out mode a checkpoint manifest lets an interrupted
// sweep resume where it left off.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fvcache/internal/experiments"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
	"fvcache/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		scaleName = flag.String("scale", "ref", "input scale: test, train or ref")
		only      = flag.String("only", "", "comma-separated artifact ids (default: all)")
		workers   = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
		outDir    = flag.String("out", "", "write one file per artifact into this directory")
		markdown  = flag.Bool("md", false, "render tables as Markdown")
		list      = flag.Bool("list", false, "list artifacts and exit")
		resume    = flag.Bool("resume", true, "with -out: skip artifacts the checkpoint manifest records as done")
		timeout   = flag.Duration("timeout", 0, "abort the sweep after this duration (0 = none)")
	)
	of := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return harness.ExitOK
	}

	scale, err := workload.ParseScale(*scaleName)
	if err != nil {
		return usage(err)
	}
	var todo []experiments.Experiment
	if *only == "" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				return usage(err)
			}
			todo = append(todo, e)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return harness.ExitFailure
		}
		// In -out mode the telemetry snapshot belongs with the sweep's
		// artifacts (and its checkpoint manifest), unless the user aimed
		// it elsewhere explicitly.
		if of.TelemetryOut == "telemetry.json" {
			of.TelemetryOut = filepath.Join(*outDir, "telemetry.json")
		}
	}
	if err := of.Start(); err != nil {
		return usage(err)
	}
	defer func() {
		if err := of.Stop(); err != nil && code == harness.ExitOK {
			fmt.Fprintln(os.Stderr, "experiments: telemetry:", err)
			code = harness.ExitFailure
		}
	}()

	ctx, cancel := harness.SignalContext(context.Background(), *timeout)
	defer cancel()

	opt := experiments.Options{Scale: scale, Workers: *workers, Markdown: *markdown}
	tasks := make([]harness.Task, 0, len(todo))
	for _, e := range todo {
		e := e
		tasks = append(tasks, harness.Task{
			ID:    e.ID,
			Title: e.Title,
			Run: func(ctx context.Context, out io.Writer) error {
				o := opt
				o.Ctx = ctx
				fmt.Fprintf(out, "== %s: %s == (scale=%s)\n\n", e.ID, e.Title, scale)
				if err := e.Run(o, out); err != nil {
					return err
				}
				_, err := fmt.Fprintln(out)
				return err
			},
		})
	}

	summary := harness.RunSweep(ctx, tasks, harness.SweepOptions{
		OutDir: *outDir,
		Key:    fmt.Sprintf("scale=%s md=%v", scale, *markdown),
		Resume: *resume,
		Stdout: os.Stdout,
		Log:    os.Stderr,
	})
	summary.Print(os.Stderr)
	if !summary.OK() {
		return harness.ExitFailure
	}
	return harness.ExitOK
}

func usage(err error) int {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	return harness.ExitUsage
}
