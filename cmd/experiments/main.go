// Command experiments regenerates every table and figure of the
// paper's evaluation (and the Section 2 study).
//
// Usage:
//
//	experiments                  # everything, reference inputs
//	experiments -only fig13      # one artifact
//	experiments -scale train     # smaller inputs
//	experiments -out results/    # one file per artifact
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fvcache/internal/experiments"
	"fvcache/internal/workload"
)

func main() {
	var (
		scaleName = flag.String("scale", "ref", "input scale: test, train or ref")
		only      = flag.String("only", "", "comma-separated artifact ids (default: all)")
		workers   = flag.Int("workers", 0, "parallel simulations (0 = all cores)")
		outDir    = flag.String("out", "", "write one file per artifact into this directory")
		markdown  = flag.Bool("md", false, "render tables as Markdown")
		list      = flag.Bool("list", false, "list artifacts and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-7s %s\n", e.ID, e.Title)
		}
		return
	}

	scale, err := workload.ParseScale(*scaleName)
	if err != nil {
		fatal(err)
	}
	var todo []experiments.Experiment
	if *only == "" {
		todo = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			todo = append(todo, e)
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}

	opt := experiments.Options{Scale: scale, Workers: *workers, Markdown: *markdown}
	for _, e := range todo {
		start := time.Now()
		var out io.Writer = os.Stdout
		var f *os.File
		if *outDir != "" {
			var err error
			f, err = os.Create(filepath.Join(*outDir, e.ID+".txt"))
			if err != nil {
				fatal(err)
			}
			out = f
		}
		fmt.Fprintf(os.Stderr, "running %s (%s)...\n", e.ID, e.Title)
		fmt.Fprintf(out, "== %s: %s == (scale=%s)\n\n", e.ID, e.Title, scale)
		if err := e.Run(opt, out); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Fprintln(out)
		if f != nil {
			f.Close()
		}
		fmt.Fprintf(os.Stderr, "  done in %s\n", time.Since(start).Truncate(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
