// Command experiments regenerates every table and figure of the
// paper's evaluation (and the Section 2 study).
//
// Usage:
//
//	experiments                  # everything, reference inputs
//	experiments -only fig13      # one artifact
//	experiments -scale train     # smaller inputs
//	experiments -out results/    # one file per artifact, resumable
//
// The sweep is fault tolerant: a failing artifact is reported in the
// final summary (with its recovered stack trace, if it panicked) while
// the remaining artifacts still complete, and the binary exits
// non-zero. In -out mode a checkpoint manifest lets an interrupted
// sweep resume where it left off.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fvcache"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
)

func main() {
	os.Exit(run())
}

func run() (code int) {
	var (
		only     = flag.String("only", "", "comma-separated artifact ids (default: all)")
		markdown = flag.Bool("md", false, "render tables as Markdown")
		list     = flag.Bool("list", false, "list artifacts and exit")
		resume   = flag.Bool("resume", true, "with -out: skip artifacts the checkpoint manifest records as done")
	)
	cf := harness.AddCommonFlags(flag.CommandLine,
		harness.FlagScale|harness.FlagWorkers|harness.FlagTimeout|harness.FlagOut, "ref")
	of := obs.AddFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, a := range fvcache.Artifacts() {
			fmt.Printf("%-7s %s\n", a.ID, a.Title)
		}
		return harness.ExitOK
	}

	scale, err := cf.Scale()
	if err != nil {
		return usage(err)
	}
	var ids []string
	if *only != "" {
		ids = strings.Split(*only, ",")
	}
	if cf.Out != "" {
		if err := os.MkdirAll(cf.Out, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			return harness.ExitFailure
		}
		// In -out mode the telemetry snapshot belongs with the sweep's
		// artifacts (and its checkpoint manifest), unless the user aimed
		// it elsewhere explicitly.
		if of.TelemetryOut == "telemetry.json" {
			of.TelemetryOut = filepath.Join(cf.Out, "telemetry.json")
		}
	}
	if err := of.Start(); err != nil {
		return usage(err)
	}
	defer func() {
		if err := of.Stop(); err != nil && code == harness.ExitOK {
			fmt.Fprintln(os.Stderr, "experiments: telemetry:", err)
			code = harness.ExitFailure
		}
	}()

	ctx, cancel := cf.Context(context.Background())
	defer cancel()

	res, err := fvcache.Sweep(ctx, fvcache.SweepRequest{
		Artifacts: ids,
		Scale:     scale,
		Workers:   cf.Workers,
		Markdown:  *markdown,
		OutDir:    cf.Out,
		Resume:    *resume,
		Stdout:    os.Stdout,
		Log:       os.Stderr,
	})
	if err != nil {
		return usage(err)
	}
	res.PrintSummary(os.Stderr)
	if !res.OK() {
		return harness.ExitFailure
	}
	return harness.ExitOK
}

func usage(err error) int {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	return harness.ExitUsage
}
