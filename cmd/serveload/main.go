// Command serveload is the serving-path load generator behind
// BENCH_serve.json: it replays a seeded production-style request mix
// against a spawned fvcached and reports where the service's time
// went.
//
//	serveload -o BENCH_serve.json            # spawn fvcached, run, report
//	serveload -addr http://127.0.0.1:8080    # drive an already-running server
//	serveload -verify BENCH_serve.json       # validate a committed artifact
//
// The mix is deterministic in structure (request sequence, workload
// choice, config choice) for a given -seed: workloads are drawn from a
// Zipf distribution over the full registered set, configurations from
// a small reused pool (config-fingerprint reuse is what exercises
// request coalescing and both result-cache tiers), and 15% of
// requests take the analytic /v1/mrc path. The run moves through five
// phases:
//
//	warmup    closed-loop, results discarded; populates the result cache
//	closed    N workers back to back — the cache-hit steady state
//	open      fixed arrival rate, latency under unsynchronized load
//	burst     rounds of identical concurrent requests — coalescing
//	deadline  deadline_ms shorter than the coalescing window — 504s,
//	          and the circuit breaker they open (503s). Runs LAST so
//	          breaker fallout cannot pollute the steady-state phases.
//
// The artifact records exact (sorted-sample) p50/p90/p99/p999 per
// endpoint, hit/coalesce ratios, 429/503/504 rates, and per-stage
// time attribution aggregated from the server's /debug/requests span
// data. -verify re-reads an artifact and checks every structural
// invariant (schema, quantile ordering, ratio ranges, stage
// coverage), plus the telemetry snapshot written next to it on the
// spawned server's SIGTERM drain; make check uses it to keep the
// committed artifact honest.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"fvcache"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
)

// Schema identifies the artifact format for forward compatibility.
const Schema = "fvcache-bench-serve/v1"

type endpointStats struct {
	Requests int   `json:"requests"`
	P50US    int64 `json:"p50_us"`
	P90US    int64 `json:"p90_us"`
	P99US    int64 `json:"p99_us"`
	P999US   int64 `json:"p999_us"`
	MaxUS    int64 `json:"max_us"`
}

// stageStat aggregates one span name across every trace the server's
// flight recorder retained — the per-stage time attribution.
type stageStat struct {
	Count   int     `json:"count"`
	MeanUS  float64 `json:"mean_us"`
	TotalUS int64   `json:"total_us"`
}

type report struct {
	Schema     string `json:"schema"`
	Seed       int64  `json:"seed"`
	Requests   int    `json:"requests"`
	DurationMS int64  `json:"duration_ms"`

	// Endpoints holds exact latency quantiles computed from the full
	// sorted sample set, per endpoint (measure, mrc).
	Endpoints map[string]endpointStats `json:"endpoints"`

	// Outcomes counts requests by class: hit / coalesced / executed /
	// 429 / 503 / 504 / error.
	Outcomes map[string]int `json:"outcomes"`

	// HitRatio and CoalesceRatio are fractions of successful (2xx)
	// requests; the rates are fractions of all requests.
	HitRatio      float64 `json:"hit_ratio"`
	CoalesceRatio float64 `json:"coalesce_ratio"`
	Rate429       float64 `json:"rate_429"`
	Rate503       float64 `json:"rate_503"`
	Rate504       float64 `json:"rate_504"`

	// StagesUS attributes time to serving stages (parse, coalesce_wait,
	// queue_wait, cache_probe, replay, encode, ...) from the span trees
	// at /debug/requests.
	StagesUS map[string]stageStat `json:"stages_us"`
}

// sample is one completed request.
type sample struct {
	endpoint string
	us       int64
	outcome  string
}

// recorder collects samples from concurrent workers.
type recorder struct {
	mu      sync.Mutex
	samples []sample
	discard bool
}

func (r *recorder) add(s sample) {
	r.mu.Lock()
	if !r.discard {
		r.samples = append(r.samples, s)
	}
	r.mu.Unlock()
}

func (r *recorder) setDiscard(d bool) {
	r.mu.Lock()
	r.discard = d
	r.mu.Unlock()
}

// configPool is the reused configuration set. Reuse is the point: the
// same fingerprints recur so the durable result cache and the
// coalescing window both see repeats, like production clients
// re-asking the popular questions.
var configPool = []string{
	`{}`,
	`{"fvc_entries":256}`,
	`{"fvc_entries":1024}`,
	`{"assoc":2}`,
	`{"victim_entries":8}`,
	`{"main_bytes":8192,"fvc_entries":256}`,
}

// gen drives requests against one server.
type gen struct {
	base   string
	client *http.Client
	rec    *recorder
	names  []string // workload names, Zipf-ranked
}

func newGen(base string) *gen {
	wls := fvcache.Workloads()
	names := make([]string, len(wls))
	for i, w := range wls {
		names[i] = w.Name
	}
	return &gen{
		base:   base,
		client: &http.Client{Timeout: 2 * time.Minute},
		rec:    &recorder{},
		names:  names,
	}
}

// pick returns the next request's endpoint, workload and config from
// the worker's deterministic stream.
func (g *gen) pick(rng *rand.Rand, zipf *rand.Zipf) (endpoint, body string) {
	wl := g.names[int(zipf.Uint64())%len(g.names)]
	if rng.Intn(100) < 15 {
		return "mrc", fmt.Sprintf(`{"workload":%q,"scale":"test","max_size_bytes":65536}`, wl)
	}
	// Favor the head of the config pool so fingerprints repeat.
	ci := rng.Intn(len(configPool) * 2)
	if ci >= len(configPool) {
		ci = 0
	}
	return "measure", fmt.Sprintf(`{"workload":%q,"scale":"test","config":%s}`, wl, configPool[ci])
}

// one issues a single request and records its sample.
func (g *gen) one(endpoint, body string) {
	start := time.Now()
	resp, err := g.client.Post(g.base+"/v1/"+endpoint, "application/json", strings.NewReader(body))
	if err != nil {
		g.rec.add(sample{endpoint: endpoint, us: time.Since(start).Microseconds(), outcome: "error"})
		return
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	us := time.Since(start).Microseconds()
	g.rec.add(sample{endpoint: endpoint, us: us, outcome: classify(endpoint, resp.StatusCode, data)})
}

// classify mirrors the server's endpoint × outcome labels from the
// response alone, so the artifact is computable against any server.
func classify(endpoint string, status int, body []byte) string {
	switch status {
	case http.StatusTooManyRequests:
		return "429"
	case http.StatusServiceUnavailable:
		return "503"
	case http.StatusGatewayTimeout:
		return "504"
	}
	if status >= 400 {
		return "error"
	}
	switch endpoint {
	case "measure":
		var out struct {
			Batch struct {
				Configs   int  `json:"configs"`
				CacheHits int  `json:"cache_hits"`
				Coalesced bool `json:"coalesced"`
			} `json:"batch"`
		}
		if json.Unmarshal(body, &out) == nil {
			switch {
			case out.Batch.Configs > 0 && out.Batch.CacheHits == out.Batch.Configs:
				return "hit"
			case out.Batch.Coalesced:
				return "coalesced"
			}
		}
	case "mrc":
		// The summary is the last NDJSON line.
		lines := strings.Split(strings.TrimSpace(string(body)), "\n")
		var sum struct {
			Summary struct {
				CacheHit  bool `json:"cache_hit"`
				Coalesced bool `json:"coalesced"`
			} `json:"summary"`
		}
		if json.Unmarshal([]byte(lines[len(lines)-1]), &sum) == nil {
			switch {
			case sum.Summary.CacheHit:
				return "hit"
			case sum.Summary.Coalesced:
				return "coalesced"
			}
		}
	}
	return "executed"
}

// closedLoop runs workers back to back until d elapses.
func (g *gen) closedLoop(workers int, d time.Duration, seed int64) {
	var wg sync.WaitGroup
	stop := time.Now().Add(d)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*1_000_003))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(g.names)-1))
			for time.Now().Before(stop) {
				g.one(g.pick(rng, zipf))
			}
		}(w)
	}
	wg.Wait()
}

// openLoop fires rate requests/second regardless of completion times.
func (g *gen) openLoop(rate int, d time.Duration, seed int64) {
	if rate <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed ^ 0x1e3779b97f4a7c15))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(g.names)-1))
	tick := time.NewTicker(time.Second / time.Duration(rate))
	defer tick.Stop()
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for time.Now().Before(stop) {
		<-tick.C
		endpoint, body := g.pick(rng, zipf)
		wg.Add(1)
		go func() { defer wg.Done(); g.one(endpoint, body) }()
	}
	wg.Wait()
}

// burst fires rounds of identical concurrent requests: every member
// lands inside one coalescing window, so the fused-batch path gets a
// directed workout.
func (g *gen) burst(rounds, width int, seed int64) {
	rng := rand.New(rand.NewSource(seed + 7))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(g.names)-1))
	for r := 0; r < rounds; r++ {
		wl := g.names[int(zipf.Uint64())%len(g.names)]
		body := fmt.Sprintf(`{"workload":%q,"scale":"test","config":%s}`, wl, configPool[rng.Intn(len(configPool))])
		var wg sync.WaitGroup
		for i := 0; i < width; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); g.one("measure", body) }()
		}
		wg.Wait()
		time.Sleep(20 * time.Millisecond)
	}
}

// deadlines issues requests whose deadline is shorter than the
// server's coalescing window: every one times out (504), and the
// failures open the per-workload circuit breaker (503). Must run last.
func (g *gen) deadlines(d time.Duration, seed int64) {
	rng := rand.New(rand.NewSource(seed + 13))
	wl := g.names[rng.Intn(len(g.names))]
	stop := time.Now().Add(d)
	for time.Now().Before(stop) {
		body := fmt.Sprintf(`{"workload":%q,"scale":"test","deadline_ms":1}`, wl)
		g.one("measure", body)
		time.Sleep(5 * time.Millisecond)
	}
}

// scrapeStages aggregates span durations by name from the server's
// flight recorder.
func (g *gen) scrapeStages() (map[string]stageStat, error) {
	resp, err := g.client.Get(g.base + "/debug/requests?n=100000")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Traces []obs.RequestTrace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	agg := map[string]stageStat{}
	for _, tr := range out.Traces {
		for _, sp := range tr.Spans {
			s := agg[sp.Name]
			s.Count++
			s.TotalUS += sp.DurationUS
			agg[sp.Name] = s
		}
	}
	for name, s := range agg {
		s.MeanUS = float64(s.TotalUS) / float64(s.Count)
		agg[name] = s
	}
	return agg, nil
}

// quantileUS returns the exact q-quantile of sorted microsecond
// latencies (nearest-rank).
func quantileUS(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// build assembles the artifact from the recorded samples.
func (g *gen) build(seed int64, elapsed time.Duration) report {
	rep := report{
		Schema:     Schema,
		Seed:       seed,
		DurationMS: elapsed.Milliseconds(),
		Endpoints:  map[string]endpointStats{},
		Outcomes:   map[string]int{},
	}
	byEndpoint := map[string][]int64{}
	g.rec.mu.Lock()
	samples := g.rec.samples
	g.rec.mu.Unlock()
	rep.Requests = len(samples)
	ok := 0
	for _, s := range samples {
		rep.Outcomes[s.outcome]++
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s.us)
		switch s.outcome {
		case "hit", "coalesced", "executed":
			ok++
		}
	}
	for ep, lat := range byEndpoint {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		rep.Endpoints[ep] = endpointStats{
			Requests: len(lat),
			P50US:    quantileUS(lat, 0.50),
			P90US:    quantileUS(lat, 0.90),
			P99US:    quantileUS(lat, 0.99),
			P999US:   quantileUS(lat, 0.999),
			MaxUS:    lat[len(lat)-1],
		}
	}
	if ok > 0 {
		rep.HitRatio = float64(rep.Outcomes["hit"]) / float64(ok)
		rep.CoalesceRatio = float64(rep.Outcomes["coalesced"]) / float64(ok)
	}
	if rep.Requests > 0 {
		n := float64(rep.Requests)
		rep.Rate429 = float64(rep.Outcomes["429"]) / n
		rep.Rate503 = float64(rep.Outcomes["503"]) / n
		rep.Rate504 = float64(rep.Outcomes["504"]) / n
	}
	return rep
}

// child is a spawned fvcached process.
type child struct {
	cmd    *exec.Cmd
	base   string
	exited chan error
}

// spawn builds (when bin is empty) and boots fvcached with a fresh
// cache directory, waiting until /readyz reports ready.
func spawn(bin, workDir, telemetryOut string, ring int) (*child, error) {
	if bin == "" {
		bin = filepath.Join(workDir, "fvcached")
		if out, err := exec.Command("go", "build", "-o", bin, "fvcache/cmd/fvcached").CombinedOutput(); err != nil {
			return nil, fmt.Errorf("building fvcached: %v\n%s", err, out)
		}
	}
	args := []string{
		"-addr", "127.0.0.1:0",
		"-coalesce", "2ms",
		"-cache-dir", filepath.Join(workDir, "cache"),
		"-trace-ring", fmt.Sprint(ring),
		"-telemetry-out", telemetryOut,
	}
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	c := &child{cmd: cmd, exited: make(chan error, 1)}
	go func() { c.exited <- cmd.Wait() }()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		return nil, fmt.Errorf("fvcached produced no startup line: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		cmd.Process.Kill()
		return nil, fmt.Errorf("startup line %q carries no address", line)
	}
	c.base = "http://" + strings.TrimSpace(line[i+len(marker):])
	go func() {
		for sc.Scan() {
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return c, nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	return nil, fmt.Errorf("fvcached never became ready at %s", c.base)
}

// stop drains the child with SIGTERM (triggering its telemetry
// export) and waits for a clean exit.
func (c *child) stop() error {
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-c.exited:
		return err
	case <-time.After(60 * time.Second):
		c.cmd.Process.Kill()
		return fmt.Errorf("fvcached did not exit after SIGTERM")
	}
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out      = flag.String("o", "BENCH_serve.json", "artifact output path")
		addr     = flag.String("addr", "", "base URL of a running fvcached (empty = spawn one)")
		bin      = flag.String("fvcached", "", "fvcached binary to spawn (empty = go build it)")
		seed     = flag.Int64("seed", 1, "request-mix seed")
		workers  = flag.Int("load-workers", 8, "closed-loop worker count")
		warmup   = flag.Duration("warmup", 2*time.Second, "warmup phase (results discarded)")
		closed   = flag.Duration("closed", 3*time.Second, "closed-loop phase duration")
		open     = flag.Duration("open", 3*time.Second, "open-loop phase duration")
		rate     = flag.Int("rate", 150, "open-loop arrival rate (requests/second)")
		bursts   = flag.Int("burst-rounds", 6, "burst rounds")
		width    = flag.Int("burst", 24, "concurrent requests per burst round")
		deadline = flag.Duration("deadline-phase", 1*time.Second, "deadline/breaker phase duration (0 disables)")
		ring     = flag.Int("trace-ring", 8192, "flight-recorder size for the spawned server")
		verify   = flag.Bool("verify", false, "validate an existing artifact instead of generating one")
	)
	flag.Parse()

	if *verify {
		path := *out
		if flag.NArg() > 0 {
			path = flag.Arg(0)
		}
		if err := verifyArtifact(path); err != nil {
			fmt.Fprintln(os.Stderr, "serveload: verify:", err)
			return harness.ExitFailure
		}
		fmt.Printf("serveload: %s verified\n", path)
		return harness.ExitOK
	}

	base := *addr
	var srv *child
	telemetryOut := filepath.Join(filepath.Dir(*out), "telemetry_serve.json")
	if base == "" {
		workDir, err := os.MkdirTemp("", "serveload")
		if err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			return harness.ExitFailure
		}
		defer os.RemoveAll(workDir)
		srv, err = spawn(*bin, workDir, telemetryOut, *ring)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			return harness.ExitFailure
		}
		base = srv.base
		fmt.Printf("serveload: fvcached up at %s\n", base)
	}

	g := newGen(base)
	start := time.Now()

	g.rec.setDiscard(true)
	fmt.Printf("serveload: warmup %s...\n", *warmup)
	g.closedLoop(2, *warmup, *seed+100)
	g.rec.setDiscard(false)

	fmt.Printf("serveload: closed loop, %d workers for %s...\n", *workers, *closed)
	g.closedLoop(*workers, *closed, *seed)
	fmt.Printf("serveload: open loop, %d req/s for %s...\n", *rate, *open)
	g.openLoop(*rate, *open, *seed)
	fmt.Printf("serveload: %d burst rounds of %d...\n", *bursts, *width)
	g.burst(*bursts, *width, *seed)
	if *deadline > 0 {
		fmt.Printf("serveload: deadline phase for %s...\n", *deadline)
		g.deadlines(*deadline, *seed)
	}
	elapsed := time.Since(start)

	stages, err := g.scrapeStages()
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload: scraping /debug/requests:", err)
		return harness.ExitFailure
	}
	rep := g.build(*seed, elapsed)
	rep.StagesUS = stages

	if srv != nil {
		if err := srv.stop(); err != nil {
			fmt.Fprintln(os.Stderr, "serveload: stopping fvcached:", err)
			return harness.ExitFailure
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		return harness.ExitFailure
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		return harness.ExitFailure
	}
	fmt.Printf("serveload: %d requests in %s -> %s\n", rep.Requests, elapsed.Truncate(time.Millisecond), *out)
	for ep, s := range rep.Endpoints {
		fmt.Printf("  %-8s n=%-6d p50=%dus p99=%dus\n", ep, s.Requests, s.P50US, s.P99US)
	}
	fmt.Printf("  hit=%.2f coalesce=%.2f 429=%.3f 503=%.3f 504=%.3f\n",
		rep.HitRatio, rep.CoalesceRatio, rep.Rate429, rep.Rate503, rep.Rate504)
	return harness.ExitOK
}

// verifyArtifact checks the structural invariants of a committed
// BENCH_serve.json and the telemetry snapshot written next to it. All
// violations are reported at once.
func verifyArtifact(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var bad []string
	fail := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }

	if rep.Schema != Schema {
		fail("schema %q, want %q", rep.Schema, Schema)
	}
	if rep.Requests <= 0 {
		fail("requests = %d, want > 0", rep.Requests)
	}
	if rep.DurationMS <= 0 {
		fail("duration_ms = %d, want > 0", rep.DurationMS)
	}
	if _, ok := rep.Endpoints["measure"]; !ok {
		fail("endpoints carries no measure entry")
	}
	for ep, s := range rep.Endpoints {
		if s.Requests <= 0 {
			fail("endpoint %s: requests = %d", ep, s.Requests)
		}
		if s.P50US <= 0 {
			fail("endpoint %s: p50_us = %d, want > 0", ep, s.P50US)
		}
		if !(s.P50US <= s.P90US && s.P90US <= s.P99US && s.P99US <= s.P999US && s.P999US <= s.MaxUS) {
			fail("endpoint %s: quantiles not monotone: p50=%d p90=%d p99=%d p999=%d max=%d",
				ep, s.P50US, s.P90US, s.P99US, s.P999US, s.MaxUS)
		}
	}
	ratio := func(name string, v float64) {
		if v < 0 || v > 1 {
			fail("%s = %v outside [0,1]", name, v)
		}
	}
	ratio("hit_ratio", rep.HitRatio)
	ratio("coalesce_ratio", rep.CoalesceRatio)
	ratio("rate_429", rep.Rate429)
	ratio("rate_503", rep.Rate503)
	ratio("rate_504", rep.Rate504)
	// The warmed, fingerprint-reusing mix must actually hit the cache
	// and actually coalesce — a run where neither happens measured the
	// wrong thing.
	if rep.HitRatio == 0 {
		fail("hit_ratio = 0: the warmed mix never hit the result cache")
	}
	if rep.CoalesceRatio == 0 {
		fail("coalesce_ratio = 0: the burst phase never coalesced")
	}
	for _, stage := range []string{"parse", "coalesce_wait", "queue_wait", "cache_probe", "replay", "encode"} {
		s, ok := rep.StagesUS[stage]
		if !ok || s.Count <= 0 {
			fail("stages_us missing %q (span data absent from /debug/requests scrape)", stage)
		} else if s.TotalUS < 0 {
			fail("stages_us[%q].total_us = %d", stage, s.TotalUS)
		}
	}

	// The spawned server's SIGTERM drain exports its telemetry next to
	// the artifact; it must validate and carry the serving-path
	// latency histograms and request traces.
	tpath := filepath.Join(filepath.Dir(path), "telemetry_serve.json")
	tbuf, err := os.ReadFile(tpath)
	if err != nil {
		fail("telemetry snapshot missing next to %s: %v", path, err)
	} else {
		snap, err := obs.ValidateSnapshot(tbuf)
		if err != nil {
			fail("telemetry snapshot invalid: %v", err)
		} else {
			found := false
			for name := range snap.Latencies {
				if strings.HasPrefix(name, "serve_latency_us{") {
					found = true
					break
				}
			}
			if !found {
				fail("telemetry snapshot carries no serve_latency_us histograms")
			}
			if len(snap.Requests) == 0 {
				fail("telemetry snapshot carries no request traces")
			}
		}
	}

	if len(bad) > 0 {
		return fmt.Errorf("%s failed %d checks:\n  %s", path, len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
