// Command serveload is the serving-path load generator behind
// BENCH_serve.json: it replays a seeded production-style request mix
// against a spawned fvcached and reports where the service's time
// went. All traffic flows through the public fvcache/client SDK — the
// same code path external callers and the fleet's own node-to-node
// forwarding use — with retries disabled, because a load generator
// must observe rejections rather than paper over them.
//
//	serveload -o BENCH_serve.json            # spawn fvcached, run, report
//	serveload -addr http://127.0.0.1:8080    # drive an already-running server
//	serveload -verify BENCH_serve.json       # validate a committed artifact
//	serveload -cluster 3                     # also bench a 3-node fleet lane
//
// The mix is deterministic in structure (request sequence, workload
// choice, config choice) for a given -seed: workloads are drawn from a
// Zipf distribution over the full registered set, configurations from
// a small reused pool (config-fingerprint reuse is what exercises
// request coalescing and both result-cache tiers), and 15% of
// requests take the analytic /v1/mrc path. The run moves through five
// phases:
//
//	warmup    closed-loop, results discarded; populates the result cache
//	closed    N workers back to back — the cache-hit steady state
//	open      fixed arrival rate, latency under unsynchronized load
//	burst     rounds of identical concurrent requests — coalescing
//	deadline  deadline_ms shorter than the coalescing window — 504s,
//	          and the circuit breaker they open (503s). Runs LAST so
//	          breaker fallout cannot pollute the steady-state phases.
//
// With -cluster n (default 3, 0 disables) the run then boots an n-node
// consistent-hash fleet (static -peers membership), replays the warm
// mix round-robin across every node, and emits a "fleet" lane in the
// artifact: fleet hit ratio, forward ratio, latency quantiles,
// per-stage attribution including the forward span, and the
// exactly-one-owner invariant (multi_owner_keys).
//
// The artifact records exact (sorted-sample) p50/p90/p99/p999 per
// endpoint, hit/coalesce ratios, 429/503/504 rates, and per-stage
// time attribution aggregated from the server's /debug/requests span
// data. -verify re-reads an artifact and checks every structural
// invariant (schema, quantile ordering, ratio ranges, stage coverage,
// fleet-lane gates), plus the telemetry snapshot written next to it on
// the spawned server's SIGTERM drain; make check uses it to keep the
// committed artifact honest.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"fvcache"
	"fvcache/api"
	"fvcache/client"
	"fvcache/internal/harness"
	"fvcache/internal/obs"
)

// Schema identifies the artifact format for forward compatibility.
const Schema = "fvcache-bench-serve/v1"

type endpointStats struct {
	Requests int   `json:"requests"`
	P50US    int64 `json:"p50_us"`
	P90US    int64 `json:"p90_us"`
	P99US    int64 `json:"p99_us"`
	P999US   int64 `json:"p999_us"`
	MaxUS    int64 `json:"max_us"`
}

// stageStat aggregates one span name across every trace the server's
// flight recorder retained — the per-stage time attribution.
type stageStat struct {
	Count   int     `json:"count"`
	MeanUS  float64 `json:"mean_us"`
	TotalUS int64   `json:"total_us"`
}

// fleetReport is the artifact's fleet lane: the same serving metrics
// measured against an n-node consistent-hash fleet driven uniformly
// across every node, plus the fleet-specific invariants.
type fleetReport struct {
	Nodes    int `json:"nodes"`
	Requests int `json:"requests"`

	// HitRatio / CoalesceRatio over successful requests, as in the
	// single-node lane. A healthy fleet keeps owner-cache affinity, so
	// hit_ratio must be at least the single-node lane's.
	HitRatio      float64 `json:"hit_ratio"`
	CoalesceRatio float64 `json:"coalesce_ratio"`

	// ForwardRatio is the fraction of requests answered through a
	// proxy hop (X-Fvcache-Forwarded-By present). Uniform arrivals on
	// n nodes put the owner elsewhere (n-1)/n of the time.
	ForwardRatio float64 `json:"forward_ratio"`

	// MultiOwnerKeys counts (endpoint, workload, config) keys whose
	// batches executed on more than one node during the recorded run —
	// zero when ownership is stable and no fallback fired.
	MultiOwnerKeys int `json:"multi_owner_keys"`

	Endpoints map[string]endpointStats `json:"endpoints"`
	Outcomes  map[string]int           `json:"outcomes"`
	// StagesUS merges /debug/requests span attribution across every
	// node; the forward stage is the proxy hop itself.
	StagesUS map[string]stageStat `json:"stages_us"`

	// Counters sums each node's /debug/fleet ownership counters.
	Counters fleetCounters `json:"counters"`
}

// fleetCounters mirrors the counter block of /debug/fleet.
type fleetCounters struct {
	Forwarded         uint64 `json:"forwarded"`
	ForwardFallback   uint64 `json:"forward_fallback"`
	ReceivedForwarded uint64 `json:"received_forwarded"`
	LocalOwned        uint64 `json:"local_owned"`
	MixedLocal        uint64 `json:"mixed_local"`
}

type report struct {
	Schema     string `json:"schema"`
	Seed       int64  `json:"seed"`
	Requests   int    `json:"requests"`
	DurationMS int64  `json:"duration_ms"`

	// Endpoints holds exact latency quantiles computed from the full
	// sorted sample set, per endpoint (measure, mrc).
	Endpoints map[string]endpointStats `json:"endpoints"`

	// Outcomes counts requests by class: hit / coalesced / executed /
	// 429 / 503 / 504 / error.
	Outcomes map[string]int `json:"outcomes"`

	// HitRatio and CoalesceRatio are fractions of successful (2xx)
	// requests; the rates are fractions of all requests.
	HitRatio      float64 `json:"hit_ratio"`
	CoalesceRatio float64 `json:"coalesce_ratio"`
	Rate429       float64 `json:"rate_429"`
	Rate503       float64 `json:"rate_503"`
	Rate504       float64 `json:"rate_504"`

	// StagesUS attributes time to serving stages (parse, coalesce_wait,
	// queue_wait, cache_probe, replay, encode, ...) from the span trees
	// at /debug/requests.
	StagesUS map[string]stageStat `json:"stages_us"`

	// Fleet is the n-node fleet lane (-cluster), absent when disabled.
	Fleet *fleetReport `json:"fleet,omitempty"`
}

// sample is one completed request.
type sample struct {
	endpoint string
	us       int64
	outcome  string
	node     string // executing fleet node (batch/summary .Node)
	fwd      bool   // answered through a proxy hop
	key      string // ownership key: endpoint|workload|config identity
}

// recorder collects samples from concurrent workers.
type recorder struct {
	mu      sync.Mutex
	samples []sample
	discard bool
}

func (r *recorder) add(s sample) {
	r.mu.Lock()
	if !r.discard {
		r.samples = append(r.samples, s)
	}
	r.mu.Unlock()
}

func (r *recorder) setDiscard(d bool) {
	r.mu.Lock()
	r.discard = d
	r.mu.Unlock()
}

// configPool is the reused configuration set. Reuse is the point: the
// same fingerprints recur so the durable result cache and the
// coalescing window both see repeats, like production clients
// re-asking the popular questions.
var configPool = []api.Config{
	{},
	{FVCEntries: 256},
	{FVCEntries: 1024},
	{Assoc: 2},
	{VictimEntries: 8},
	{MainBytes: 8192, FVCEntries: 256},
}

// gen drives requests against one server — or, with several clients,
// round-robin across a fleet's nodes.
type gen struct {
	clients []*client.Client
	next    atomic.Uint64
	rec     *recorder
	names   []string // workload names, Zipf-ranked
}

func newGen(bases ...string) (*gen, error) {
	wls := fvcache.Workloads()
	names := make([]string, len(wls))
	for i, w := range wls {
		names[i] = w.Name
	}
	g := &gen{rec: &recorder{}, names: names}
	for _, base := range bases {
		cli, err := client.New(base, client.Options{
			NoRetry:    true,
			HTTPClient: &http.Client{Timeout: 2 * time.Minute},
		})
		if err != nil {
			return nil, err
		}
		g.clients = append(g.clients, cli)
	}
	return g, nil
}

// pick returns the round-robin next client, so fleet arrivals are
// uniform across nodes.
func (g *gen) pickClient() *client.Client {
	return g.clients[int(g.next.Add(1)-1)%len(g.clients)]
}

func mrcRequest(wl string) api.MRCRequest {
	return api.MRCRequest{Workload: wl, Scale: "test", MaxSizeBytes: 65536}
}

// errOutcome maps an SDK error to an outcome class.
func errOutcome(err error) string {
	var ae *api.Error
	if errors.As(err, &ae) {
		switch ae.Status {
		case http.StatusTooManyRequests:
			return "429"
		case http.StatusServiceUnavailable:
			return "503"
		case http.StatusGatewayTimeout:
			return "504"
		}
	}
	return "error"
}

// oneMeasure issues a single measure request and records its sample.
func (g *gen) oneMeasure(req api.MeasureRequest) {
	key := "measure|" + req.Workload
	if req.Config != nil {
		key += "|" + req.Config.Normalized().Fingerprint()
	}
	start := time.Now()
	resp, err := g.pickClient().Measure(context.Background(), req)
	us := time.Since(start).Microseconds()
	if err != nil {
		g.rec.add(sample{endpoint: "measure", us: us, outcome: errOutcome(err), key: key})
		return
	}
	outcome := "executed"
	switch {
	case resp.Batch.Configs > 0 && resp.Batch.CacheHits == resp.Batch.Configs:
		outcome = "hit"
	case resp.Batch.Coalesced:
		outcome = "coalesced"
	}
	g.rec.add(sample{
		endpoint: "measure", us: us, outcome: outcome,
		node: resp.Batch.Node, fwd: resp.ForwardedBy != "", key: key,
	})
}

// oneMRC issues a single streamed MRC request and records its sample.
func (g *gen) oneMRC(req api.MRCRequest) {
	key := fmt.Sprintf("mrc|%s|%d|%d", req.Workload, req.LineBytes, req.MaxSizeBytes)
	start := time.Now()
	sum, err := g.pickClient().MRC(context.Background(), req, nil)
	us := time.Since(start).Microseconds()
	if err != nil {
		g.rec.add(sample{endpoint: "mrc", us: us, outcome: errOutcome(err), key: key})
		return
	}
	outcome := "executed"
	switch {
	case sum.CacheHit:
		outcome = "hit"
	case sum.Coalesced:
		outcome = "coalesced"
	}
	g.rec.add(sample{
		endpoint: "mrc", us: us, outcome: outcome,
		node: sum.Node, fwd: sum.ForwardedBy != "", key: key,
	})
}

// draw picks the next request from the deterministic stream and
// returns the closure that sends it, so callers may issue it on
// another goroutine without sharing the rng.
func (g *gen) draw(rng *rand.Rand, zipf *rand.Zipf) func() {
	wl := g.names[int(zipf.Uint64())%len(g.names)]
	if rng.Intn(100) < 15 {
		return func() { g.oneMRC(mrcRequest(wl)) }
	}
	// Favor the head of the config pool so fingerprints repeat.
	ci := rng.Intn(len(configPool) * 2)
	if ci >= len(configPool) {
		ci = 0
	}
	cfg := configPool[ci]
	return func() {
		g.oneMeasure(api.MeasureRequest{Workload: wl, Scale: "test", Config: &cfg})
	}
}

// issue draws the next request and sends it inline.
func (g *gen) issue(rng *rand.Rand, zipf *rand.Zipf) { g.draw(rng, zipf)() }

// closedLoop runs workers back to back until d elapses.
func (g *gen) closedLoop(workers int, d time.Duration, seed int64) {
	var wg sync.WaitGroup
	stop := time.Now().Add(d)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*1_000_003))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(g.names)-1))
			for time.Now().Before(stop) {
				g.issue(rng, zipf)
			}
		}(w)
	}
	wg.Wait()
}

// openLoop fires rate requests/second regardless of completion times.
func (g *gen) openLoop(rate int, d time.Duration, seed int64) {
	if rate <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(seed ^ 0x1e3779b97f4a7c15))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(g.names)-1))
	tick := time.NewTicker(time.Second / time.Duration(rate))
	defer tick.Stop()
	stop := time.Now().Add(d)
	var wg sync.WaitGroup
	for time.Now().Before(stop) {
		<-tick.C
		send := g.draw(rng, zipf) // drawn serially; sent concurrently
		wg.Add(1)
		go func() { defer wg.Done(); send() }()
	}
	wg.Wait()
}

// burst fires rounds of identical concurrent requests: every member
// lands inside one coalescing window, so the fused-batch path gets a
// directed workout. Across a fleet the members spread over all nodes
// and still coalesce at the single owner.
func (g *gen) burst(rounds, width int, seed int64) {
	rng := rand.New(rand.NewSource(seed + 7))
	zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(g.names)-1))
	for r := 0; r < rounds; r++ {
		wl := g.names[int(zipf.Uint64())%len(g.names)]
		cfg := configPool[rng.Intn(len(configPool))]
		req := api.MeasureRequest{Workload: wl, Scale: "test", Config: &cfg}
		var wg sync.WaitGroup
		for i := 0; i < width; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); g.oneMeasure(req) }()
		}
		wg.Wait()
		time.Sleep(20 * time.Millisecond)
	}
}

// deadlines issues requests whose deadline is shorter than the
// server's coalescing window: every one times out (504), and the
// failures open the per-workload circuit breaker (503). Must run last.
func (g *gen) deadlines(d time.Duration, seed int64) {
	rng := rand.New(rand.NewSource(seed + 13))
	wl := g.names[rng.Intn(len(g.names))]
	stop := time.Now().Add(d)
	for time.Now().Before(stop) {
		g.oneMeasure(api.MeasureRequest{Workload: wl, Scale: "test", DeadlineMS: 1})
		time.Sleep(5 * time.Millisecond)
	}
}

// warmFleet deterministically covers every (workload, config) pair and
// every workload's MRC once, so the recorded fleet phase measures the
// owner-cache steady state, not cold-start misses.
func (g *gen) warmFleet() {
	var wg sync.WaitGroup
	for _, wl := range g.names {
		wl := wl
		for _, cfg := range configPool {
			cfg := cfg
			wg.Add(1)
			go func() {
				defer wg.Done()
				g.oneMeasure(api.MeasureRequest{Workload: wl, Scale: "test", Config: &cfg})
			}()
		}
		wg.Add(1)
		go func() { defer wg.Done(); g.oneMRC(mrcRequest(wl)) }()
	}
	wg.Wait()
}

// scrapeStages aggregates span durations by name from one server's
// flight recorder into agg.
func scrapeStages(base string, agg map[string]stageStat) error {
	resp, err := http.Get(base + "/debug/requests?n=100000")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Traces []obs.RequestTrace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	for _, tr := range out.Traces {
		for _, sp := range tr.Spans {
			s := agg[sp.Name]
			s.Count++
			s.TotalUS += sp.DurationUS
			agg[sp.Name] = s
		}
	}
	return nil
}

func finishStages(agg map[string]stageStat) map[string]stageStat {
	for name, s := range agg {
		if s.Count > 0 {
			s.MeanUS = float64(s.TotalUS) / float64(s.Count)
		}
		agg[name] = s
	}
	return agg
}

// scrapeFleetCounters sums one node's /debug/fleet counters into agg.
func scrapeFleetCounters(base string, agg *fleetCounters) error {
	resp, err := http.Get(base + "/debug/fleet")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var out struct {
		Counters fleetCounters `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return err
	}
	agg.Forwarded += out.Counters.Forwarded
	agg.ForwardFallback += out.Counters.ForwardFallback
	agg.ReceivedForwarded += out.Counters.ReceivedForwarded
	agg.LocalOwned += out.Counters.LocalOwned
	agg.MixedLocal += out.Counters.MixedLocal
	return nil
}

// quantileUS returns the exact q-quantile of sorted microsecond
// latencies (nearest-rank).
func quantileUS(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// tally computes the per-endpoint quantiles and outcome counts shared
// by both lanes; returns (endpoints, outcomes, ok, hit, coalesced).
func tally(samples []sample) (map[string]endpointStats, map[string]int, int, int, int) {
	endpoints := map[string]endpointStats{}
	outcomes := map[string]int{}
	byEndpoint := map[string][]int64{}
	ok, hit, coalesced := 0, 0, 0
	for _, s := range samples {
		outcomes[s.outcome]++
		byEndpoint[s.endpoint] = append(byEndpoint[s.endpoint], s.us)
		switch s.outcome {
		case "hit":
			ok++
			hit++
		case "coalesced":
			ok++
			coalesced++
		case "executed":
			ok++
		}
	}
	for ep, lat := range byEndpoint {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		endpoints[ep] = endpointStats{
			Requests: len(lat),
			P50US:    quantileUS(lat, 0.50),
			P90US:    quantileUS(lat, 0.90),
			P99US:    quantileUS(lat, 0.99),
			P999US:   quantileUS(lat, 0.999),
			MaxUS:    lat[len(lat)-1],
		}
	}
	return endpoints, outcomes, ok, hit, coalesced
}

// build assembles the single-node lane from the recorded samples.
func (g *gen) build(seed int64, elapsed time.Duration) report {
	g.rec.mu.Lock()
	samples := g.rec.samples
	g.rec.mu.Unlock()
	endpoints, outcomes, ok, hit, coalesced := tally(samples)
	rep := report{
		Schema:     Schema,
		Seed:       seed,
		Requests:   len(samples),
		DurationMS: elapsed.Milliseconds(),
		Endpoints:  endpoints,
		Outcomes:   outcomes,
	}
	if ok > 0 {
		rep.HitRatio = float64(hit) / float64(ok)
		rep.CoalesceRatio = float64(coalesced) / float64(ok)
	}
	if rep.Requests > 0 {
		n := float64(rep.Requests)
		rep.Rate429 = float64(outcomes["429"]) / n
		rep.Rate503 = float64(outcomes["503"]) / n
		rep.Rate504 = float64(outcomes["504"]) / n
	}
	return rep
}

// buildFleet assembles the fleet lane.
func (g *gen) buildFleet() *fleetReport {
	g.rec.mu.Lock()
	samples := g.rec.samples
	g.rec.mu.Unlock()
	endpoints, outcomes, ok, hit, coalesced := tally(samples)
	fr := &fleetReport{
		Nodes:     len(g.clients),
		Requests:  len(samples),
		Endpoints: endpoints,
		Outcomes:  outcomes,
	}
	forwarded := 0
	ownersByKey := map[string]map[string]bool{}
	for _, s := range samples {
		if s.fwd {
			forwarded++
		}
		if s.node != "" {
			set := ownersByKey[s.key]
			if set == nil {
				set = map[string]bool{}
				ownersByKey[s.key] = set
			}
			set[s.node] = true
		}
	}
	for _, set := range ownersByKey {
		if len(set) > 1 {
			fr.MultiOwnerKeys++
		}
	}
	if ok > 0 {
		fr.HitRatio = float64(hit) / float64(ok)
		fr.CoalesceRatio = float64(coalesced) / float64(ok)
	}
	if fr.Requests > 0 {
		fr.ForwardRatio = float64(forwarded) / float64(fr.Requests)
	}
	return fr
}

// child is a spawned fvcached process.
type child struct {
	cmd    *exec.Cmd
	base   string
	exited chan error
}

// buildBinary compiles fvcached once for every spawn of the run.
func buildBinary(workDir string) (string, error) {
	bin := filepath.Join(workDir, "fvcached")
	if out, err := exec.Command("go", "build", "-o", bin, "fvcache/cmd/fvcached").CombinedOutput(); err != nil {
		return "", fmt.Errorf("building fvcached: %v\n%s", err, out)
	}
	return bin, nil
}

// spawn boots fvcached with the given arguments, waiting until /readyz
// reports ready.
func spawn(bin string, args ...string) (*child, error) {
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	c := &child{cmd: cmd, exited: make(chan error, 1)}
	go func() { c.exited <- cmd.Wait() }()

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		cmd.Process.Kill()
		return nil, fmt.Errorf("fvcached produced no startup line: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		cmd.Process.Kill()
		return nil, fmt.Errorf("startup line %q carries no address", line)
	}
	c.base = "http://" + strings.TrimSpace(line[i+len(marker):])
	go func() {
		for sc.Scan() {
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(c.base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return c, nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	cmd.Process.Kill()
	return nil, fmt.Errorf("fvcached never became ready at %s", c.base)
}

// stop drains the child with SIGTERM (triggering its telemetry
// export) and waits for a clean exit.
func (c *child) stop() error {
	if err := c.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-c.exited:
		return err
	case <-time.After(60 * time.Second):
		c.cmd.Process.Kill()
		return fmt.Errorf("fvcached did not exit after SIGTERM")
	}
}

// spawnFleet reserves n ports, then boots n fvcached processes whose
// -peers lists form one static consistent-hash membership.
func spawnFleet(bin, workDir string, n, ring int) ([]*child, error) {
	addrs := make([]string, n)
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addrs[i] = ln.Addr().String()
		urls[i] = "http://" + addrs[i]
		ln.Close()
	}
	peers := strings.Join(urls, ",")
	children := make([]*child, 0, n)
	for i := 0; i < n; i++ {
		c, err := spawn(bin,
			"-addr", addrs[i],
			"-peers", peers,
			"-coalesce", "2ms",
			"-cache-dir", filepath.Join(workDir, fmt.Sprintf("fleet-cache-%d", i)),
			"-trace-ring", fmt.Sprint(ring),
			"-telemetry-out", filepath.Join(workDir, fmt.Sprintf("fleet-telemetry-%d.json", i)),
		)
		if err != nil {
			for _, prev := range children {
				prev.cmd.Process.Kill()
			}
			return nil, fmt.Errorf("fleet node %d: %w", i, err)
		}
		children = append(children, c)
	}
	return children, nil
}

// runFleetLane boots the fleet, replays the warm mix uniformly across
// its nodes and assembles the fleet lane.
func runFleetLane(bin, workDir string, n int, seed int64, workers int, closed time.Duration, bursts, width, ring int) (*fleetReport, error) {
	children, err := spawnFleet(bin, workDir, n, ring)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, c := range children {
			c.stop()
		}
	}()
	bases := make([]string, len(children))
	for i, c := range children {
		bases[i] = c.base
	}
	fmt.Printf("serveload: fleet of %d up (%s)\n", n, strings.Join(bases, ", "))

	g, err := newGen(bases...)
	if err != nil {
		return nil, err
	}
	g.rec.setDiscard(true)
	fmt.Println("serveload: fleet warmup (full key coverage)...")
	g.warmFleet()
	g.rec.setDiscard(false)

	fmt.Printf("serveload: fleet closed loop, %d workers for %s...\n", workers, closed)
	g.closedLoop(workers, closed, seed+1000)
	fmt.Printf("serveload: fleet %d burst rounds of %d...\n", bursts, width)
	g.burst(bursts, width, seed+1000)

	fr := g.buildFleet()
	stages := map[string]stageStat{}
	var counters fleetCounters
	for _, base := range bases {
		if err := scrapeStages(base, stages); err != nil {
			return nil, fmt.Errorf("scraping %s/debug/requests: %w", base, err)
		}
		if err := scrapeFleetCounters(base, &counters); err != nil {
			return nil, fmt.Errorf("scraping %s/debug/fleet: %w", base, err)
		}
	}
	fr.StagesUS = finishStages(stages)
	fr.Counters = counters
	return fr, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		out      = flag.String("o", "BENCH_serve.json", "artifact output path")
		addr     = flag.String("addr", "", "base URL of a running fvcached (empty = spawn one)")
		bin      = flag.String("fvcached", "", "fvcached binary to spawn (empty = go build it)")
		seed     = flag.Int64("seed", 1, "request-mix seed")
		workers  = flag.Int("load-workers", 8, "closed-loop worker count")
		warmup   = flag.Duration("warmup", 2*time.Second, "warmup phase (results discarded)")
		closed   = flag.Duration("closed", 3*time.Second, "closed-loop phase duration")
		open     = flag.Duration("open", 3*time.Second, "open-loop phase duration")
		rate     = flag.Int("rate", 150, "open-loop arrival rate (requests/second)")
		bursts   = flag.Int("burst-rounds", 6, "burst rounds")
		width    = flag.Int("burst", 24, "concurrent requests per burst round")
		deadline = flag.Duration("deadline-phase", 1*time.Second, "deadline/breaker phase duration (0 disables)")
		ring     = flag.Int("trace-ring", 8192, "flight-recorder size for the spawned server")
		cluster  = flag.Int("cluster", 3, "fleet lane node count (0 disables; requires spawning, not -addr)")
		verify   = flag.Bool("verify", false, "validate an existing artifact instead of generating one")
	)
	flag.Parse()

	if *verify {
		path := *out
		if flag.NArg() > 0 {
			path = flag.Arg(0)
		}
		if err := verifyArtifact(path); err != nil {
			fmt.Fprintln(os.Stderr, "serveload: verify:", err)
			return harness.ExitFailure
		}
		fmt.Printf("serveload: %s verified\n", path)
		return harness.ExitOK
	}

	if *cluster == 1 {
		fmt.Fprintln(os.Stderr, "serveload: -cluster needs at least 2 nodes (0 disables)")
		return harness.ExitUsage
	}

	base := *addr
	var srv *child
	var workDir, builtBin string
	telemetryOut := filepath.Join(filepath.Dir(*out), "telemetry_serve.json")
	needSpawn := base == "" || *cluster > 0
	if needSpawn {
		var err error
		workDir, err = os.MkdirTemp("", "serveload")
		if err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			return harness.ExitFailure
		}
		defer os.RemoveAll(workDir)
		builtBin = *bin
		if builtBin == "" {
			if builtBin, err = buildBinary(workDir); err != nil {
				fmt.Fprintln(os.Stderr, "serveload:", err)
				return harness.ExitFailure
			}
		}
	}
	if base == "" {
		var err error
		srv, err = spawn(builtBin,
			"-addr", "127.0.0.1:0",
			"-coalesce", "2ms",
			"-cache-dir", filepath.Join(workDir, "cache"),
			"-trace-ring", fmt.Sprint(*ring),
			"-telemetry-out", telemetryOut,
		)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			return harness.ExitFailure
		}
		base = srv.base
		fmt.Printf("serveload: fvcached up at %s\n", base)
	}

	g, err := newGen(base)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		return harness.ExitFailure
	}
	start := time.Now()

	g.rec.setDiscard(true)
	fmt.Printf("serveload: warmup %s...\n", *warmup)
	g.closedLoop(2, *warmup, *seed+100)
	g.rec.setDiscard(false)

	fmt.Printf("serveload: closed loop, %d workers for %s...\n", *workers, *closed)
	g.closedLoop(*workers, *closed, *seed)
	fmt.Printf("serveload: open loop, %d req/s for %s...\n", *rate, *open)
	g.openLoop(*rate, *open, *seed)
	fmt.Printf("serveload: %d burst rounds of %d...\n", *bursts, *width)
	g.burst(*bursts, *width, *seed)
	if *deadline > 0 {
		fmt.Printf("serveload: deadline phase for %s...\n", *deadline)
		g.deadlines(*deadline, *seed)
	}
	elapsed := time.Since(start)

	stages := map[string]stageStat{}
	if err := scrapeStages(base, stages); err != nil {
		fmt.Fprintln(os.Stderr, "serveload: scraping /debug/requests:", err)
		return harness.ExitFailure
	}
	rep := g.build(*seed, elapsed)
	rep.StagesUS = finishStages(stages)

	if srv != nil {
		if err := srv.stop(); err != nil {
			fmt.Fprintln(os.Stderr, "serveload: stopping fvcached:", err)
			return harness.ExitFailure
		}
	}

	if *cluster > 0 {
		fr, err := runFleetLane(builtBin, workDir, *cluster, *seed, *workers, *closed, *bursts, *width, *ring)
		if err != nil {
			fmt.Fprintln(os.Stderr, "serveload: fleet lane:", err)
			return harness.ExitFailure
		}
		rep.Fleet = fr
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		return harness.ExitFailure
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		return harness.ExitFailure
	}
	fmt.Printf("serveload: %d requests in %s -> %s\n", rep.Requests, elapsed.Truncate(time.Millisecond), *out)
	for ep, s := range rep.Endpoints {
		fmt.Printf("  %-8s n=%-6d p50=%dus p99=%dus\n", ep, s.Requests, s.P50US, s.P99US)
	}
	fmt.Printf("  hit=%.2f coalesce=%.2f 429=%.3f 503=%.3f 504=%.3f\n",
		rep.HitRatio, rep.CoalesceRatio, rep.Rate429, rep.Rate503, rep.Rate504)
	if rep.Fleet != nil {
		fmt.Printf("  fleet(%d): n=%d hit=%.2f forward=%.2f multi_owner=%d\n",
			rep.Fleet.Nodes, rep.Fleet.Requests, rep.Fleet.HitRatio, rep.Fleet.ForwardRatio, rep.Fleet.MultiOwnerKeys)
	}
	return harness.ExitOK
}

// verifyArtifact checks the structural invariants of a committed
// BENCH_serve.json and the telemetry snapshot written next to it. All
// violations are reported at once.
func verifyArtifact(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var bad []string
	fail := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }

	if rep.Schema != Schema {
		fail("schema %q, want %q", rep.Schema, Schema)
	}
	if rep.Requests <= 0 {
		fail("requests = %d, want > 0", rep.Requests)
	}
	if rep.DurationMS <= 0 {
		fail("duration_ms = %d, want > 0", rep.DurationMS)
	}
	checkEndpoints := func(lane string, endpoints map[string]endpointStats) {
		if _, ok := endpoints["measure"]; !ok {
			fail("%s: endpoints carries no measure entry", lane)
		}
		for ep, s := range endpoints {
			if s.Requests <= 0 {
				fail("%s endpoint %s: requests = %d", lane, ep, s.Requests)
			}
			if s.P50US <= 0 {
				fail("%s endpoint %s: p50_us = %d, want > 0", lane, ep, s.P50US)
			}
			if !(s.P50US <= s.P90US && s.P90US <= s.P99US && s.P99US <= s.P999US && s.P999US <= s.MaxUS) {
				fail("%s endpoint %s: quantiles not monotone: p50=%d p90=%d p99=%d p999=%d max=%d",
					lane, ep, s.P50US, s.P90US, s.P99US, s.P999US, s.MaxUS)
			}
		}
	}
	checkEndpoints("single", rep.Endpoints)
	ratio := func(name string, v float64) {
		if v < 0 || v > 1 {
			fail("%s = %v outside [0,1]", name, v)
		}
	}
	ratio("hit_ratio", rep.HitRatio)
	ratio("coalesce_ratio", rep.CoalesceRatio)
	ratio("rate_429", rep.Rate429)
	ratio("rate_503", rep.Rate503)
	ratio("rate_504", rep.Rate504)
	// The warmed, fingerprint-reusing mix must actually hit the cache
	// and actually coalesce — a run where neither happens measured the
	// wrong thing.
	if rep.HitRatio == 0 {
		fail("hit_ratio = 0: the warmed mix never hit the result cache")
	}
	if rep.CoalesceRatio == 0 {
		fail("coalesce_ratio = 0: the burst phase never coalesced")
	}
	for _, stage := range []string{"parse", "coalesce_wait", "queue_wait", "cache_probe", "replay", "encode"} {
		s, ok := rep.StagesUS[stage]
		if !ok || s.Count <= 0 {
			fail("stages_us missing %q (span data absent from /debug/requests scrape)", stage)
		} else if s.TotalUS < 0 {
			fail("stages_us[%q].total_us = %d", stage, s.TotalUS)
		}
	}

	// Fleet lane gates: exactly-one-owner, the (n-1)/n forward ratio of
	// uniform arrivals, owner-cache affinity at least as good as the
	// single node's, and the forward span present in the attribution.
	if rep.Fleet != nil {
		fr := rep.Fleet
		if fr.Nodes < 2 {
			fail("fleet: nodes = %d, want >= 2", fr.Nodes)
		}
		if fr.Requests <= 0 {
			fail("fleet: requests = %d, want > 0", fr.Requests)
		}
		checkEndpoints("fleet", fr.Endpoints)
		ratio("fleet.hit_ratio", fr.HitRatio)
		ratio("fleet.forward_ratio", fr.ForwardRatio)
		if fr.MultiOwnerKeys != 0 {
			fail("fleet: %d keys executed on more than one owner", fr.MultiOwnerKeys)
		}
		if fr.HitRatio < rep.HitRatio {
			fail("fleet: hit_ratio %.3f below single-node %.3f — sharding lost owner-cache affinity",
				fr.HitRatio, rep.HitRatio)
		}
		expect := float64(fr.Nodes-1) / float64(fr.Nodes)
		if math.Abs(fr.ForwardRatio-expect) > 0.15 {
			fail("fleet: forward_ratio %.3f, want %.3f±0.15 for uniform arrivals on %d nodes",
				fr.ForwardRatio, expect, fr.Nodes)
		}
		if s, ok := fr.StagesUS["forward"]; !ok || s.Count <= 0 {
			fail("fleet: stages_us missing the forward span")
		}
		if fr.Counters.Forwarded == 0 {
			fail("fleet: ownership counters report zero forwards")
		}
	}

	// The spawned server's SIGTERM drain exports its telemetry next to
	// the artifact; it must validate and carry the serving-path
	// latency histograms and request traces.
	tpath := filepath.Join(filepath.Dir(path), "telemetry_serve.json")
	tbuf, err := os.ReadFile(tpath)
	if err != nil {
		fail("telemetry snapshot missing next to %s: %v", path, err)
	} else {
		snap, err := obs.ValidateSnapshot(tbuf)
		if err != nil {
			fail("telemetry snapshot invalid: %v", err)
		} else {
			found := false
			for name := range snap.Latencies {
				if strings.HasPrefix(name, "serve_latency_us{") {
					found = true
					break
				}
			}
			if !found {
				fail("telemetry snapshot carries no serve_latency_us histograms")
			}
			if len(snap.Requests) == 0 {
				fail("telemetry snapshot carries no request traces")
			}
		}
	}

	if len(bad) > 0 {
		return fmt.Errorf("%s failed %d checks:\n  %s", path, len(bad), strings.Join(bad, "\n  "))
	}
	return nil
}
