// Command benchsweep measures the record-once/replay-many sweep engine
// against live per-configuration execution and writes the result as a
// JSON artifact (BENCH_sweep.json by default).
//
// The sweep is Figure 10's shape — a 16KB direct-mapped baseline plus
// every FVC entry count — over one workload. "Live" runs the workload
// once per configuration, the way the experiment suite worked before
// the recording engine; "replay" captures the trace once through the
// shared recording cache and replays it once per configuration. The
// artifact also reports the steady-state replay allocation count,
// which the de-allocated access path keeps at zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/sim"
	"fvcache/internal/workload"
)

type report struct {
	Workload string `json:"workload"`
	Scale    string `json:"scale"`
	Configs  int    `json:"configs"`
	Accesses uint64 `json:"accesses"`

	LiveNsPerSweep   int64   `json:"live_ns_per_sweep"`
	ReplayNsPerSweep int64   `json:"replay_ns_per_sweep"`
	Speedup          float64 `json:"speedup"`

	// SteadyReplayAllocs counts heap allocations per full recording
	// replay into a warm hierarchy (the de-allocated access path).
	SteadyReplayAllocs float64 `json:"steady_replay_allocs"`
}

func sweepGrid(values []uint32) []core.Config {
	main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
	cfgs := []core.Config{{Main: main}}
	for _, e := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		cfgs = append(cfgs, core.Config{
			Main:           main,
			FVC:            &fvc.Params{Entries: e, LineBytes: main.LineBytes, Bits: 3},
			FrequentValues: values,
		})
	}
	return cfgs
}

func run(out string) error {
	const scale = workload.Test
	w, err := workload.Get("imgdct")
	if err != nil {
		return err
	}
	values := sim.ProfileTopAccessed(w, scale, 7)
	cfgs := sweepGrid(values)

	liveBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, cfg := range cfgs {
				if _, err := sim.Measure(w, scale, cfg, sim.MeasureOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	rec, err := sim.Recordings.Get(w, scale)
	if err != nil {
		return err
	}
	replayBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec, err := sim.Recordings.Get(w, scale)
			if err != nil {
				b.Fatal(err)
			}
			for _, cfg := range cfgs {
				if _, err := sim.MeasureRecorded(rec, cfg, sim.MeasureOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	// Interleave repetitions and keep the fastest of each side: the
	// minimum is the standard de-noising estimator for wall-clock
	// benchmarks on shared machines (noise is strictly additive).
	const reps = 3
	liveNs, replayNs := int64(0), int64(0)
	for r := 0; r < reps; r++ {
		if ns := testing.Benchmark(liveBench).NsPerOp(); r == 0 || ns < liveNs {
			liveNs = ns
		}
		if ns := testing.Benchmark(replayBench).NsPerOp(); r == 0 || ns < replayNs {
			replayNs = ns
		}
	}

	sys, err := core.New(cfgs[len(cfgs)-1])
	if err != nil {
		return err
	}
	sim.ReplayInto(rec, sys) // warm: pages and cache frames materialized
	allocs := testing.AllocsPerRun(3, func() { sim.ReplayInto(rec, sys) })

	r := report{
		Workload:           w.Name(),
		Scale:              "test",
		Configs:            len(cfgs),
		Accesses:           rec.Accesses(),
		LiveNsPerSweep:     liveNs,
		ReplayNsPerSweep:   replayNs,
		Speedup:            float64(liveNs) / float64(replayNs),
		SteadyReplayAllocs: allocs,
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("%-10s %d configs: live %.1fms  replay %.1fms  speedup %.2fx  steady replay allocs %.0f\n",
		r.Workload, r.Configs,
		float64(r.LiveNsPerSweep)/1e6, float64(r.ReplayNsPerSweep)/1e6,
		r.Speedup, r.SteadyReplayAllocs)
	fmt.Printf("wrote %s\n", out)
	return nil
}

func main() {
	out := flag.String("o", "BENCH_sweep.json", "output path for the JSON artifact")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		os.Exit(1)
	}
}
