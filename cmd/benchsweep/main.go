// Command benchsweep measures the sweep engine's two optimization
// layers against live per-configuration execution and writes the
// result as a JSON artifact (BENCH_sweep.json by default).
//
// The sweep is Figure 10's shape — a 16KB direct-mapped baseline plus
// every FVC entry count — over one workload. "Live" runs the workload
// once per configuration, the way the experiment suite worked before
// the recording engine; "replay" captures the trace once through the
// shared recording cache and replays it once per configuration;
// "batch" replays the recording exactly once, driving every
// configuration in lockstep through the fused SystemSet engine;
// "parallel" adds the chunk-parallel layer on top, splitting the one
// fused replay across -workers cores seeded from columnar chunk
// checkpoints. The artifact also reports the steady-state allocation
// counts of both replay paths (which the de-allocated access loops
// keep at zero), the machine's core count, and the columnar trace's
// compressed bytes per access.
//
// A second pair of lanes races the analytic miss-rate-curve engine
// (internal/mrc) against the fused batch replay of a fig10-style
// direct-mapped size ladder — every power-of-two size from 1KB to
// 64KB at 32B lines. The analytic pass produces every ladder point at
// once; its miss counts are cross-checked against the replay before
// either lane is timed, and the artifact records the resulting
// mrc_speedup and per-access cost.
//
// With -verify, benchsweep instead reads an existing artifact and
// checks it is well-formed: every speedup layer must be >= 1.0, the
// parallel lane must beat batch on multi-core machines (and stay
// within bounded overhead on one core), the analytic pass must beat
// the ladder replay by at least 5x, the steady-state allocation
// counts zero, the compression ratio real, and the telemetry snapshot
// next to it must satisfy obs.ValidateSnapshot. All violations are
// reported at once, each naming the offending field. make check uses
// this to keep both committed artifacts honest.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"fvcache/internal/cache"
	"fvcache/internal/core"
	"fvcache/internal/fvc"
	"fvcache/internal/harness"
	"fvcache/internal/mrc"
	"fvcache/internal/obs"
	"fvcache/internal/sim"
	"fvcache/internal/trace"
	"fvcache/internal/workload"
)

type report struct {
	Workload string `json:"workload"`
	Scale    string `json:"scale"`
	Configs  int    `json:"configs"`
	Accesses uint64 `json:"accesses"`

	LiveNsPerSweep     int64   `json:"live_ns_per_sweep"`
	ReplayNsPerSweep   int64   `json:"replay_ns_per_sweep"`
	BatchNsPerSweep    int64   `json:"batch_ns_per_sweep"`
	ParallelNsPerSweep int64   `json:"parallel_ns_per_sweep"`
	Speedup            float64 `json:"speedup"`          // live / replay
	BatchSpeedup       float64 `json:"batch_speedup"`    // replay / batch
	TotalSpeedup       float64 `json:"total_speedup"`    // live / batch
	ParallelSpeedup    float64 `json:"parallel_speedup"` // batch / parallel

	// Cores records how many CPUs the parallel lane could use
	// (GOMAXPROCS at bench time); verify's parallel_speedup threshold
	// depends on it, since one core can only show bounded overhead.
	Cores int `json:"cores"`
	// CompressedBytesPerAccess is the columnar chunk encoding's
	// footprint (store bitset + delta'd addrs + frame-of-reference
	// values + checkpoint deltas) per recorded access. The raw columns
	// cost 9 bytes per access.
	CompressedBytesPerAccess float64 `json:"compressed_bytes_per_access"`

	// SteadyReplayAllocs counts heap allocations per full recording
	// replay into a warm hierarchy (the de-allocated access path).
	SteadyReplayAllocs float64 `json:"steady_replay_allocs"`
	// SteadyBatchAllocs counts heap allocations per full fused replay
	// into a warm SystemSet driving every sweep configuration.
	SteadyBatchAllocs float64 `json:"steady_batch_allocs"`

	// The miss-rate-curve lanes compare one analytic reuse-distance
	// pass (internal/mrc) against the fused batch replay of the same
	// direct-mapped size ladder — the fig10-style geometry swept over
	// every power-of-two size. MRCPoints is the ladder length; the
	// analytic pass produces all of them at once and its miss counts
	// are cross-checked against the replay in-run before timing.
	MRCPoints        int     `json:"mrc_points"`
	LadderNsPerSweep int64   `json:"ladder_ns_per_sweep"` // batch replay of the ladder
	MRCNsPerSweep    int64   `json:"mrc_ns_per_sweep"`    // one analytic pass
	MRCNsPerAccess   float64 `json:"mrc_ns_per_access"`
	MRCSpeedup       float64 `json:"mrc_speedup"` // ladder / mrc
}

func sweepGrid(values []uint32) []core.Config {
	main := cache.Params{SizeBytes: 16 << 10, LineBytes: 32, Assoc: 1}
	cfgs := []core.Config{{Main: main}}
	for _, e := range []int{64, 128, 256, 512, 1024, 2048, 4096} {
		cfgs = append(cfgs, core.Config{
			Main:           main,
			FVC:            &fvc.Params{Entries: e, LineBytes: main.LineBytes, Bits: 3},
			FrequentValues: values,
		})
	}
	return cfgs
}

// mrcLadder is the fig10-style direct-mapped size sweep the MRC lanes
// race: every power-of-two size from 1KB to 64KB at the figure's 32B
// lines, one replay config and one set count per point.
func mrcLadder() ([]core.Config, []int) {
	var cfgs []core.Config
	var sets []int
	for sz := 1 << 10; sz <= 64<<10; sz <<= 1 {
		cfgs = append(cfgs, core.Config{Main: cache.Params{SizeBytes: sz, LineBytes: 32, Assoc: 1}})
		sets = append(sets, sz/32)
	}
	return cfgs, sets
}

// crossCheckMRC asserts the analytic pass and the fused replay agree
// on every ladder point's miss count before either lane is timed: a
// speedup over a wrong answer is not a speedup.
func crossCheckMRC(rec *trace.Recording, cfgs []core.Config, mrcOpt mrc.Options) error {
	res, err := mrc.Analyze(rec, mrcOpt)
	if err != nil {
		return err
	}
	replay, err := sim.MeasureRecordedBatch(rec, cfgs, sim.MeasureOptions{})
	if err != nil {
		return err
	}
	for i, c := range res.Curves {
		if got, want := c.Points[0].Misses, replay[i].Stats.Misses; got != want {
			return fmt.Errorf("mrc cross-check: %dB ladder point: analytic %d misses, replay %d",
				cfgs[i].Main.SizeBytes, got, want)
		}
	}
	return nil
}

func run(ctx context.Context, out string, workers int) error {
	const scale = workload.Test
	w, err := workload.Get("imgdct")
	if err != nil {
		return err
	}
	values := sim.ProfileTopAccessed(w, scale, 7)
	cfgs := sweepGrid(values)

	liveBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, cfg := range cfgs {
				if _, err := sim.Measure(w, scale, cfg, sim.MeasureOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	rec, err := sim.Recordings.Get(w, scale)
	if err != nil {
		return err
	}
	replayBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec, err := sim.Recordings.Get(w, scale)
			if err != nil {
				b.Fatal(err)
			}
			for _, cfg := range cfgs {
				if _, err := sim.MeasureRecorded(rec, cfg, sim.MeasureOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	batchBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec, err := sim.Recordings.Get(w, scale)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.MeasureRecordedBatch(rec, cfgs, sim.MeasureOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	parallelBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rec, err := sim.Recordings.Get(w, scale)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.MeasureRecordedBatch(rec, cfgs, sim.MeasureOptions{Parallelism: workers}); err != nil {
				b.Fatal(err)
			}
		}
	}

	ladderCfgs, ladderSets := mrcLadder()
	mrcOpt := mrc.Options{LineBytes: 32, MaxSizeBytes: 64 << 10, SetCounts: ladderSets, MaxAssoc: 1}
	if err := crossCheckMRC(rec, ladderCfgs, mrcOpt); err != nil {
		return err
	}
	ladderBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.MeasureRecordedBatch(rec, ladderCfgs, sim.MeasureOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	}
	mrcBench := func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := mrc.Analyze(rec, mrcOpt); err != nil {
				b.Fatal(err)
			}
		}
	}

	// Interleave repetitions and keep the fastest of each side: the
	// minimum is the standard de-noising estimator for wall-clock
	// benchmarks on shared machines (noise is strictly additive).
	const reps = 3
	liveNs, replayNs, batchNs, parallelNs := int64(0), int64(0), int64(0), int64(0)
	ladderNs, mrcNs := int64(0), int64(0)
	bspan := obs.Begin("bench")
	for r := 0; r < reps; r++ {
		// The bench loops themselves stay context-free (a ctx check in
		// the measured path would perturb the numbers); -timeout aborts
		// between repetitions.
		if err := ctx.Err(); err != nil {
			bspan.Done()
			return err
		}
		lspan := bspan.Begin("live")
		if ns := testing.Benchmark(liveBench).NsPerOp(); r == 0 || ns < liveNs {
			liveNs = ns
		}
		lspan.Done()
		pspan := bspan.Begin("replay")
		if ns := testing.Benchmark(replayBench).NsPerOp(); r == 0 || ns < replayNs {
			replayNs = ns
		}
		pspan.Done()
		fspan := bspan.Begin("batch")
		if ns := testing.Benchmark(batchBench).NsPerOp(); r == 0 || ns < batchNs {
			batchNs = ns
		}
		fspan.Done()
		cspan := bspan.Begin("parallel")
		if ns := testing.Benchmark(parallelBench).NsPerOp(); r == 0 || ns < parallelNs {
			parallelNs = ns
		}
		cspan.Done()
		dspan := bspan.Begin("ladder")
		if ns := testing.Benchmark(ladderBench).NsPerOp(); r == 0 || ns < ladderNs {
			ladderNs = ns
		}
		dspan.Done()
		mspan := bspan.Begin("mrc")
		if ns := testing.Benchmark(mrcBench).NsPerOp(); r == 0 || ns < mrcNs {
			mrcNs = ns
		}
		mspan.Done()
	}
	bspan.Done()

	aspan := obs.Begin("alloc-check")
	sys, err := core.New(cfgs[len(cfgs)-1])
	if err != nil {
		return err
	}
	sim.ReplayInto(rec, sys) // warm: pages and cache frames materialized
	allocs := testing.AllocsPerRun(3, func() { sim.ReplayInto(rec, sys) })

	set, err := core.NewSet(cfgs)
	if err != nil {
		return err
	}
	ops, addrs, vals := rec.AccessColumns()
	set.ReplayColumns(ops, addrs, vals) // warm
	batchAllocs := testing.AllocsPerRun(3, func() { set.ReplayColumns(ops, addrs, vals) })
	aspan.Done()

	rspan := obs.Begin("report")
	defer rspan.Done()
	r := report{
		Workload:                 w.Name(),
		Scale:                    "test",
		Configs:                  len(cfgs),
		Accesses:                 rec.Accesses(),
		LiveNsPerSweep:           liveNs,
		ReplayNsPerSweep:         replayNs,
		BatchNsPerSweep:          batchNs,
		ParallelNsPerSweep:       parallelNs,
		Speedup:                  float64(liveNs) / float64(replayNs),
		BatchSpeedup:             float64(replayNs) / float64(batchNs),
		TotalSpeedup:             float64(liveNs) / float64(batchNs),
		ParallelSpeedup:          float64(batchNs) / float64(parallelNs),
		Cores:                    runtime.GOMAXPROCS(0),
		CompressedBytesPerAccess: rec.Chunked(0).BytesPerAccess(),
		SteadyReplayAllocs:       allocs,
		SteadyBatchAllocs:        batchAllocs,
		MRCPoints:                len(ladderCfgs),
		LadderNsPerSweep:         ladderNs,
		MRCNsPerSweep:            mrcNs,
		MRCNsPerAccess:           float64(mrcNs) / float64(rec.Accesses()),
		MRCSpeedup:               float64(ladderNs) / float64(mrcNs),
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("%-10s %d configs: live %.1fms  replay %.1fms  batch %.1fms  parallel %.1fms (%d workers, %d cores)  speedup %.2fx  batch speedup %.2fx  total %.2fx  parallel speedup %.2fx  %.2f B/access  steady allocs replay %.0f batch %.0f\n",
		r.Workload, r.Configs,
		float64(r.LiveNsPerSweep)/1e6, float64(r.ReplayNsPerSweep)/1e6, float64(r.BatchNsPerSweep)/1e6,
		float64(r.ParallelNsPerSweep)/1e6, workers, r.Cores,
		r.Speedup, r.BatchSpeedup, r.TotalSpeedup, r.ParallelSpeedup,
		r.CompressedBytesPerAccess,
		r.SteadyReplayAllocs, r.SteadyBatchAllocs)
	fmt.Printf("%-10s %d-point DM ladder: batch %.1fms  mrc %.1fms (%.2f ns/access)  mrc speedup %.2fx\n",
		r.Workload, r.MRCPoints,
		float64(r.LadderNsPerSweep)/1e6, float64(r.MRCNsPerSweep)/1e6,
		r.MRCNsPerAccess, r.MRCSpeedup)
	fmt.Printf("wrote %s\n", out)
	return nil
}

// verify checks an existing artifact: it must parse, each optimization
// layer must actually be a speedup, the timing fields must be present,
// the steady-state replay loops must be allocation-free, and the
// columnar compression must beat the 9-byte raw encoding. Every
// violation is collected and reported — each message names the JSON
// field at fault — so a regression with several symptoms is diagnosed
// in one run instead of one field per run. The telemetry snapshot
// written alongside the artifact is validated too, so a schema
// regression in the exporter cannot ship unnoticed.
//
// The parallel_speedup threshold is core-count aware: with two or more
// cores the chunk-parallel lane must genuinely beat the fused batch
// replay (>= 1.2x); on a single core no speedup is physically possible,
// so the gate instead bounds the checkpoint/splice overhead
// (>= 0.6x, i.e. at most ~1.7x slower than batch).
func verify(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var bad []string
	badf := func(format string, args ...any) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	if r.Configs < 2 {
		badf("configs is %d, want >= 2", r.Configs)
	}
	if r.Accesses == 0 {
		badf("accesses is 0, want > 0")
	}
	if r.Cores < 1 {
		badf("cores is %d, want >= 1", r.Cores)
	}
	if r.MRCPoints < 2 {
		badf("mrc_points is %d, want >= 2", r.MRCPoints)
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"live_ns_per_sweep", r.LiveNsPerSweep},
		{"replay_ns_per_sweep", r.ReplayNsPerSweep},
		{"batch_ns_per_sweep", r.BatchNsPerSweep},
		{"parallel_ns_per_sweep", r.ParallelNsPerSweep},
		{"ladder_ns_per_sweep", r.LadderNsPerSweep},
		{"mrc_ns_per_sweep", r.MRCNsPerSweep},
	} {
		if c.v <= 0 {
			badf("%s is %d, want > 0", c.name, c.v)
		}
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"speedup", r.Speedup},
		{"batch_speedup", r.BatchSpeedup},
		{"total_speedup", r.TotalSpeedup},
	} {
		if c.v < 1.0 {
			badf("%s is %.2f, want >= 1.0", c.name, c.v)
		}
	}
	minParallel := 0.6 // single core: bounded overhead, not speedup
	if r.Cores >= 2 {
		minParallel = 1.2
	}
	if r.ParallelSpeedup < minParallel {
		badf("parallel_speedup is %.2f, want >= %.1f on %d cores",
			r.ParallelSpeedup, minParallel, r.Cores)
	}
	// The analytic engine's bar is absolute: one reuse-distance pass
	// must beat the fused batch replay of the same size ladder by 5x
	// on any core count (the pass is serial).
	if r.MRCSpeedup < 5.0 {
		badf("mrc_speedup is %.2f, want >= 5.0", r.MRCSpeedup)
	}
	if r.MRCNsPerAccess <= 0 {
		badf("mrc_ns_per_access is %.2f, want > 0", r.MRCNsPerAccess)
	}
	if r.CompressedBytesPerAccess <= 0 || r.CompressedBytesPerAccess >= 9 {
		badf("compressed_bytes_per_access is %.2f, want in (0, 9): raw columns cost 9 bytes",
			r.CompressedBytesPerAccess)
	}
	if r.SteadyReplayAllocs != 0 {
		badf("steady_replay_allocs is %.0f, want 0", r.SteadyReplayAllocs)
	}
	if r.SteadyBatchAllocs != 0 {
		badf("steady_batch_allocs is %.0f, want 0", r.SteadyBatchAllocs)
	}
	if len(bad) > 0 {
		return fmt.Errorf("%s: %d violation(s):\n  %s", path, len(bad), strings.Join(bad, "\n  "))
	}
	tpath := filepath.Join(filepath.Dir(path), "telemetry.json")
	tbuf, err := os.ReadFile(tpath)
	if err != nil {
		return fmt.Errorf("telemetry snapshot missing next to %s: %w", path, err)
	}
	snap, err := obs.ValidateSnapshot(tbuf)
	if err != nil {
		return fmt.Errorf("%s: %w", tpath, err)
	}
	fmt.Printf("%s ok: live/replay %.2fx, replay/batch %.2fx, live/batch %.2fx, batch/parallel %.2fx on %d cores, mrc %.2fx over the %d-point ladder, %.2f B/access, zero steady-state allocs\n",
		path, r.Speedup, r.BatchSpeedup, r.TotalSpeedup, r.ParallelSpeedup, r.Cores,
		r.MRCSpeedup, r.MRCPoints, r.CompressedBytesPerAccess)
	fmt.Printf("%s ok: %s, %d counters, %d phases\n",
		tpath, snap.Schema, len(snap.Counters), len(snap.Phases.Children))
	return nil
}

func main() {
	os.Exit(mainExit())
}

func mainExit() (code int) {
	out := flag.String("o", "BENCH_sweep.json", "output path for the JSON artifact")
	check := flag.String("verify", "", "verify an existing artifact instead of benchmarking")
	cf := harness.AddCommonFlags(flag.CommandLine, harness.FlagWorkers|harness.FlagTimeout, "")
	of := obs.AddFlags(flag.CommandLine)
	flag.Parse()
	workers := cf.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if *check != "" {
		// Verify is read-only: it must not overwrite the committed
		// telemetry artifact it is checking.
		of.TelemetryOut = ""
		if err := verify(*check); err != nil {
			fmt.Fprintln(os.Stderr, "benchsweep:", err)
			return 1
		}
		return 0
	}
	// The telemetry snapshot ships next to the benchmark artifact.
	if of.TelemetryOut == "telemetry.json" {
		of.TelemetryOut = filepath.Join(filepath.Dir(*out), "telemetry.json")
	}
	if err := of.Start(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		return 1
	}
	defer func() {
		if err := of.Stop(); err != nil && code == 0 {
			fmt.Fprintln(os.Stderr, "benchsweep: telemetry:", err)
			code = 1
		}
	}()
	ctx, cancel := cf.Context(context.Background())
	defer cancel()
	if err := run(ctx, *out, workers); err != nil {
		fmt.Fprintln(os.Stderr, "benchsweep:", err)
		return 1
	}
	return 0
}
