package fvcache

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"fvcache/internal/experiments"
	"fvcache/internal/harness"
)

// ArtifactInfo names one reproducible paper artifact (a table or
// figure of the evaluation, or a Section 2 study artifact).
type ArtifactInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// Artifacts lists every reproducible artifact in execution order.
func Artifacts() []ArtifactInfo {
	all := experiments.All()
	out := make([]ArtifactInfo, len(all))
	for i, e := range all {
		out[i] = ArtifactInfo{ID: e.ID, Title: e.Title}
	}
	return out
}

// SweepRequest selects artifacts to reproduce and how to run them.
type SweepRequest struct {
	// Artifacts are the artifact IDs to run, in order; empty runs the
	// full suite.
	Artifacts []string
	// Scale selects the workload input size (the paper's headline
	// numbers use Ref).
	Scale Scale
	// Workers bounds per-artifact simulation parallelism (<=0 means
	// GOMAXPROCS).
	Workers int
	// Markdown renders tables as GitHub-flavored Markdown.
	Markdown bool
	// OutDir, when non-empty, writes one <ID>.txt per artifact into
	// the directory and maintains a resumable checkpoint manifest.
	OutDir string
	// Resume skips artifacts the checkpoint manifest records as done
	// (meaningful only with OutDir).
	Resume bool
	// Stdout receives the artifact stream when OutDir is empty (nil
	// discards it; per-artifact output is still captured in the
	// result).
	Stdout io.Writer
	// Log receives progress lines (nil discards them).
	Log io.Writer
	// OnArtifact, when non-nil, streams each executed artifact's
	// result as it completes (skipped and canceled artifacts appear
	// only in the final SweepResult). The fvcached service uses this
	// to stream a sweep over HTTP.
	OnArtifact func(ArtifactResult)
}

// ArtifactResult is one artifact's outcome.
type ArtifactResult struct {
	ID     string `json:"id"`
	Title  string `json:"title"`
	Status string `json:"status"` // done, FAILED, skipped or canceled
	// Output is the rendered artifact text; empty in OutDir mode
	// (the artifact lives in <OutDir>/<ID>.txt) and for artifacts
	// that did not execute.
	Output     string `json:"output,omitempty"`
	Err        string `json:"err,omitempty"`
	DurationMS int64  `json:"duration_ms"`
}

// SweepResult aggregates a sweep's outcomes.
type SweepResult struct {
	Artifacts []ArtifactResult `json:"artifacts"`
	Done      int              `json:"done"`
	Skipped   int              `json:"skipped"`
	Failed    int              `json:"failed"`
	Canceled  int              `json:"canceled"`

	summary harness.Summary
}

// OK reports whether every artifact completed (done or skipped).
func (r *SweepResult) OK() bool { return r.Failed == 0 && r.Canceled == 0 }

// PrintSummary writes the human-readable sweep summary — one line per
// artifact, then full failure details including recovered stack
// traces — the cmd binaries print to stderr.
func (r *SweepResult) PrintSummary(w io.Writer) { r.summary.Print(w) }

// Sweep reproduces the requested artifacts with per-artifact fault
// isolation: a failing artifact (error or recovered panic) is reported
// in the result while the remaining artifacts still run. Context
// cancellation stops the sweep at the next artifact boundary. The
// returned error is non-nil only for unusable requests (an unknown
// artifact ID); execution failures are reported per artifact.
func Sweep(ctx context.Context, req SweepRequest) (*SweepResult, error) {
	var todo []experiments.Experiment
	if len(req.Artifacts) == 0 {
		todo = experiments.All()
	} else {
		for _, id := range req.Artifacts {
			e, err := experiments.Get(strings.TrimSpace(id))
			if err != nil {
				return nil, err
			}
			todo = append(todo, e)
		}
	}
	opt := experiments.Options{Scale: req.Scale, Workers: req.Workers, Markdown: req.Markdown}
	outputs := make([]string, len(todo)) // RunSweep executes sequentially
	tasks := make([]harness.Task, len(todo))
	for i, e := range todo {
		i, e := i, e
		tasks[i] = harness.Task{
			ID:    e.ID,
			Title: e.Title,
			Run: func(ctx context.Context, out io.Writer) error {
				var buf *bytes.Buffer
				w := out
				if req.OutDir == "" {
					// Capture the artifact text for the result (and the
					// streaming callback) while still feeding Stdout.
					buf = new(bytes.Buffer)
					if req.Stdout != nil {
						w = io.MultiWriter(req.Stdout, buf)
					} else {
						w = buf
					}
				}
				start := time.Now()
				o := opt
				o.Ctx = ctx
				fmt.Fprintf(w, "== %s: %s == (scale=%s)\n\n", e.ID, e.Title, req.Scale)
				err := e.Run(o, w)
				if err == nil {
					_, err = fmt.Fprintln(w)
				}
				if buf != nil {
					outputs[i] = buf.String()
				}
				if req.OnArtifact != nil {
					req.OnArtifact(artifactResult(
						harness.TaskResult{ID: e.ID, Title: e.Title, Status: statusOf(err), Err: err, Duration: time.Since(start)},
						outputs[i]))
				}
				return err
			},
		}
	}
	logW := req.Log
	if logW == nil {
		logW = io.Discard
	}
	summary := harness.RunSweep(ctx, tasks, harness.SweepOptions{
		OutDir: req.OutDir,
		Key:    fmt.Sprintf("scale=%s md=%v", req.Scale, req.Markdown),
		Resume: req.Resume,
		Stdout: io.Discard, // task wrappers route their own output
		Log:    logW,
	})
	res := &SweepResult{summary: summary}
	for i, tr := range summary.Results {
		res.Artifacts = append(res.Artifacts, artifactResult(tr, outputs[i]))
		switch tr.Status {
		case harness.TaskDone:
			res.Done++
		case harness.TaskSkipped:
			res.Skipped++
		case harness.TaskFailed:
			res.Failed++
		case harness.TaskCanceled:
			res.Canceled++
		}
	}
	return res, nil
}

// statusOf classifies a wrapped task run for the streaming callback.
func statusOf(err error) harness.TaskStatus {
	if err != nil {
		return harness.TaskFailed
	}
	return harness.TaskDone
}

// artifactResult converts a harness task result plus captured output
// into the public artifact result.
func artifactResult(tr harness.TaskResult, output string) ArtifactResult {
	ar := ArtifactResult{
		ID:         tr.ID,
		Title:      tr.Title,
		Status:     tr.Status.String(),
		Output:     output,
		DurationMS: tr.Duration.Milliseconds(),
	}
	if tr.Err != nil {
		ar.Err = tr.Err.Error()
	}
	return ar
}
