// End-to-end smoke test for the fvcached binary: boot the service,
// issue a measurement over HTTP, scrape /debug/metrics, drain it with
// SIGTERM, and validate the telemetry snapshot it exports. This is the
// make check gate for the service pipeline (the in-process coalescing
// and backpressure tests live in internal/serve).
package fvcache_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"testing"
	"time"

	"fvcache/internal/obs"
)

func TestServiceSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs a binary")
	}
	if runtime.GOOS == "windows" {
		t.Skip("drains via SIGTERM")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "fvcached")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/fvcached").CombinedOutput(); err != nil {
		t.Fatalf("building fvcached: %v\n%s", err, out)
	}

	telPath := filepath.Join(dir, "telemetry.json")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-telemetry-out", telPath)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	defer cmd.Process.Kill()

	// The first stdout line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("no startup line: %v", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		t.Fatalf("startup line %q carries no address", line)
	}
	base := "http://" + strings.TrimSpace(line[i+len(marker):])
	drained := make(chan bool, 1)
	go func() {
		saw := false
		for sc.Scan() {
			if strings.Contains(sc.Text(), "drained") {
				saw = true
			}
		}
		drained <- saw
	}()

	// One measurement round trip.
	resp, err := http.Post(base+"/v1/measure", "application/json",
		strings.NewReader(`{"workload":"goboard","config":{"main_bytes":8192,"fvc_entries":256}}`))
	if err != nil {
		t.Fatalf("measure request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results []struct {
			Accesses uint64  `json:"accesses"`
			MissRate float64 `json:"miss_rate"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("measure response: %v\n%s", err, body)
	}
	if len(out.Results) != 1 || out.Results[0].Accesses == 0 {
		t.Fatalf("empty measurement: %s", body)
	}

	// The metrics page must export the service counters.
	resp, err = http.Get(base + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{"serve_requests_total", "serve_batches_total", "replay_events_total"} {
		if !strings.Contains(string(page), metric) {
			t.Errorf("metrics page missing %s", metric)
		}
	}

	// The flight recorder must have the measurement's trace.
	resp, err = http.Get(base + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var flight struct {
		Count  int `json:"count"`
		Traces []struct {
			ID       string `json:"id"`
			Endpoint string `json:"endpoint"`
		} `json:"traces"`
	}
	err = json.NewDecoder(resp.Body).Decode(&flight)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/requests: %v", err)
	}
	if flight.Count == 0 {
		t.Error("/debug/requests recorded no traces")
	}

	// Graceful drain: SIGTERM must exit 0 after completing the drain.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("fvcached exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("fvcached did not exit after SIGTERM")
	}
	if !<-drained {
		t.Error("drain epilogue line missing from stdout")
	}

	// The exported telemetry snapshot must validate and carry the
	// request counters the run produced.
	buf, err := os.ReadFile(telPath)
	if err != nil {
		t.Fatalf("service did not export telemetry: %v", err)
	}
	snap, err := obs.ValidateSnapshot(buf)
	if err != nil {
		t.Fatalf("exported snapshot invalid: %v", err)
	}
	for _, c := range []string{"serve_requests_total", "serve_batches_total"} {
		if snap.Counters[c] == 0 {
			t.Errorf("%s is 0 in exported snapshot; counters: %v", c, snap.Counters)
		}
	}
	// The serving-path observability additions ride the same drain:
	// exact-quantile latency histograms and the flight recorder's
	// request span trees.
	foundLatency := false
	for name := range snap.Latencies {
		if strings.HasPrefix(name, "serve_latency_us{") {
			foundLatency = true
		}
	}
	if !foundLatency {
		t.Errorf("snapshot carries no serve_latency_us histograms: %v", len(snap.Latencies))
	}
	if len(snap.Requests) == 0 {
		t.Error("snapshot carries no request traces from the flight recorder")
	}
	found := false
	for _, ph := range snap.Phases.Children {
		if strings.HasPrefix(ph.Name, "serve:") {
			found = true
		}
	}
	if !found {
		var names []string
		for _, ph := range snap.Phases.Children {
			names = append(names, ph.Name)
		}
		t.Errorf("phase tree carries no serve span: %v", names)
	}
}
