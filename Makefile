GO ?= go

.PHONY: all build test check fuzz vet fmt bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is the full robustness gate (see ROADMAP.md "Tier-1 verify"):
# vet, build (with telemetry on and compiled out), the race-enabled
# test suite, a short fuzz smoke run over the hardened trace reader,
# the telemetry-overhead gate (the steady-state replay loops must stay
# allocation-free with telemetry compiled in, and the exported
# telemetry.json must validate end to end), a single-iteration pass
# over every benchmark so the benchmark corpus cannot rot, and a
# sanity pass over the committed sweep-engine artifact (it must parse,
# every speedup layer must be >= 1.0, the steady-state allocation
# counts must be zero, and its telemetry snapshot must validate).
check: vet build
	$(GO) build -tags obsoff ./...
	$(GO) test -race ./...
	$(GO) test -tags obsoff ./internal/obs ./internal/sim ./internal/core
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzReader -fuzztime=5s
	$(GO) test -count=1 -run='TestReplayAccessPathZeroAllocs|TestBatchReplayZeroAllocs' ./internal/sim
	$(GO) test -count=1 -run='TestTelemetry' .
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchsweep -verify BENCH_sweep.json

# bench measures both sweep-engine layers (per-config replay and the
# fused batch) against live execution and writes the BENCH_sweep.json
# artifact, plus the run's telemetry.json snapshot next to it.
bench:
	$(GO) run ./cmd/benchsweep -o BENCH_sweep.json

fuzz:
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzReader -fuzztime=60s

fmt:
	gofmt -w .
