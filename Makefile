GO ?= go

.PHONY: all build test check fuzz vet fmt bench bench-serve lint-examples

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint-examples keeps the examples honest: they document the public
# API, so they must consume only the root fvcache package, never the
# internal engine behind it.
lint-examples:
	@if grep -rn 'fvcache/internal' examples/; then \
		echo "examples/ must import only the public fvcache package"; exit 1; \
	fi

# check is the full robustness gate (see ROADMAP.md "Tier-1 verify"):
# vet, the examples import lint, build (with telemetry on and compiled
# out), the race-enabled test suite (which includes the fvcached
# service e2e tests: request coalescing, 429 backpressure, graceful
# drain, deadlines, the circuit breaker, and the chaos detection
# matrix over the durable result cache), a race-enabled rerun of the
# chunk-parallel seam-equivalence suite (workers racing over shared
# chunk columns must stay bit-identical to serial), a short fuzz smoke
# run over the hardened trace reader, the columnar chunk codec, and
# the result-cache entry codec, the telemetry-overhead gate (the
# steady-state replay loops — serial, fused batch, and the per-worker
# parallel chunk loop — and the result-cache hit path must stay
# allocation-free with telemetry compiled in, and the exported
# telemetry.json must validate end to end), the service smoke and
# crash-recovery runs (boot fvcached, measure over HTTP, SIGKILL it
# over a durable cache, restart, prove quarantine + bit-identical
# recompute), a single-iteration pass over every benchmark so the
# benchmark corpus cannot rot, and a sanity pass over the committed
# sweep-engine artifact (it must parse, every speedup layer must hold
# its core-count-aware threshold — including the analytic miss-rate-
# curve pass's 5x bar over the ladder replay — the steady-state
# allocation counts must be zero, the compression ratio must beat the
# raw columns, and its telemetry snapshot must validate). The mrc
# zero-alloc gate pins both analytic hot loops: the banked Mattson
# stack update and the fused direct-mapped table walk. The request-
# observability additions gate here too: an obsoff build + test of the
# reqtrace layer, the span hot path's zero-alloc pin with telemetry
# compiled in, the race-enabled flight-recorder test, a serveload
# smoke against a booted fvcached (TestServeLoadSmoke), and schema
# validation of the committed BENCH_serve.json artifact. The fleet
# additions gate here as well: a race-enabled fleet smoke (3-node
# ownership + bit-identity, node-kill fallback + re-join, debug
# endpoints), an obsoff build + test of the public api and client
# packages, and the serveload -verify run now also checks the fleet
# lane (forward ratio vs (n-1)/n, single ownership, fleet hit ratio).
check: vet lint-examples build
	$(GO) build -tags obsoff ./...
	$(GO) test -race ./...
	$(GO) test -race -count=1 -run='TestChaos' ./internal/resultcache
	$(GO) test -race -count=1 -run='TestParallelReplayEquivalence|TestParallelReplayChunkSizeSweep' ./internal/sim
	$(GO) test -race -count=1 -run='TestRecorderConcurrency' ./internal/obs/reqtrace
	$(GO) test -race -count=1 -run='TestFleet' ./internal/serve
	$(GO) test -race -count=1 ./internal/fleet
	$(GO) test -tags obsoff ./internal/obs ./internal/obs/reqtrace ./internal/serve ./internal/sim ./internal/core ./internal/mrc ./api ./client
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzReader -fuzztime=5s
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzColumnCodec -fuzztime=5s
	$(GO) test ./internal/resultcache -run='^$$' -fuzz=FuzzResultEntry -fuzztime=5s
	$(GO) test -count=1 -run='TestReplayAccessPathZeroAllocs|TestBatchReplayZeroAllocs|TestParallelSteadyReplayZeroAllocs' ./internal/sim
	$(GO) test -count=1 -run='TestChunkedDecodeZeroAllocsSteadyState' ./internal/trace
	$(GO) test -count=1 -run='TestMRCSteadyZeroAllocs|TestMRCDMSteadyZeroAllocs' ./internal/mrc
	$(GO) test -count=1 -run='TestResultCacheHitZeroAllocs' ./internal/resultcache
	$(GO) test -count=1 -run='TestSpanHotPathZeroAllocs' ./internal/obs/reqtrace
	$(GO) test -count=1 -run='TestTelemetry|TestServiceSmoke|TestCrashRecovery|TestServeLoadSmoke' .
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchsweep -verify BENCH_sweep.json
	$(GO) run ./cmd/serveload -verify BENCH_serve.json

# bench measures the sweep-engine layers (per-config replay, the fused
# batch, and the chunk-parallel replay) against live execution and
# writes the BENCH_sweep.json artifact, plus the run's telemetry.json
# snapshot next to it.
bench:
	$(GO) run ./cmd/benchsweep -o BENCH_sweep.json

# bench-serve replays the seeded production-style request mix against
# a spawned fvcached and regenerates BENCH_serve.json (latency
# quantiles per endpoint, hit/coalesce ratios, per-stage time
# attribution), plus the drained server's telemetry_serve.json next to
# it.
bench-serve:
	$(GO) run ./cmd/serveload -o BENCH_serve.json

fuzz:
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzReader -fuzztime=60s
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzColumnCodec -fuzztime=60s
	$(GO) test ./internal/resultcache -run='^$$' -fuzz=FuzzResultEntry -fuzztime=60s

fmt:
	gofmt -w .
