GO ?= go

.PHONY: all build test check fuzz vet fmt bench

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is the full robustness gate (see ROADMAP.md "Tier-1 verify"):
# vet, build, the race-enabled test suite, a short fuzz smoke run over
# the hardened trace reader, a single-iteration pass over every
# benchmark so the benchmark corpus cannot rot, and a sanity pass over
# the committed sweep-engine artifact (it must parse, every speedup
# layer must be >= 1.0, and the steady-state replay loops must be
# allocation-free).
check: vet build
	$(GO) test -race ./...
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzReader -fuzztime=5s
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchsweep -verify BENCH_sweep.json

# bench measures both sweep-engine layers (per-config replay and the
# fused batch) against live execution and writes the BENCH_sweep.json
# artifact.
bench:
	$(GO) run ./cmd/benchsweep -o BENCH_sweep.json

fuzz:
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzReader -fuzztime=60s

fmt:
	gofmt -w .
