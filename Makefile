GO ?= go

.PHONY: all build test check fuzz vet fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is the full robustness gate (see ROADMAP.md "Tier-1 verify"):
# vet, build, the race-enabled test suite, and a short fuzz smoke run
# over the hardened trace reader.
check: vet build
	$(GO) test -race ./...
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzReader -fuzztime=5s

fuzz:
	$(GO) test ./internal/trace -run='^$$' -fuzz=FuzzReader -fuzztime=60s

fmt:
	gofmt -w .
