// Tests for the public fvcache facade: the stable surface must agree
// bit-for-bit with the internal engine it wraps, honor contexts, and
// stream sweep artifacts.
package fvcache_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"fvcache"
	"fvcache/internal/sim"
	"fvcache/internal/workload"
)

func baseConfig() fvcache.Config {
	return fvcache.Config{Main: fvcache.CacheParams{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1}}
}

func TestFacadeMeasureMatchesInternal(t *testing.T) {
	ctx := context.Background()
	got, err := fvcache.Measure(ctx, fvcache.MeasureRequest{
		Workload: "goboard", Scale: fvcache.Test, Config: baseConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.Get("goboard")
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Measure(w, workload.Test, baseConfig(), sim.MeasureOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("facade Measure diverged from sim.Measure:\n got %+v\nwant %+v", got, want)
	}
}

func TestFacadeMeasureBatchMatchesMeasure(t *testing.T) {
	ctx := context.Background()
	values, err := fvcache.Profile(ctx, fvcache.ProfileRequest{Workload: "goboard", Scale: fvcache.Test, K: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(values) != 7 {
		t.Fatalf("Profile returned %d values, want 7", len(values))
	}
	cfgs := []fvcache.Config{
		baseConfig(),
		{
			Main:           fvcache.CacheParams{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 1},
			FVC:            &fvcache.FVCParams{Entries: 256, LineBytes: 32, Bits: 3},
			FrequentValues: values,
		},
	}
	batch, err := fvcache.MeasureBatch(ctx, fvcache.MeasureBatchRequest{
		Workload: "goboard", Scale: fvcache.Test, Configs: cfgs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(cfgs) {
		t.Fatalf("batch returned %d results, want %d", len(batch), len(cfgs))
	}
	for i, cfg := range cfgs {
		one, err := fvcache.Measure(ctx, fvcache.MeasureRequest{Workload: "goboard", Scale: fvcache.Test, Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != one {
			t.Errorf("config %d: batch result diverged:\n got %+v\nwant %+v", i, batch[i], one)
		}
	}
	if batch[1].Stats.FVCHits == 0 {
		t.Error("FVC configuration recorded no FVC hits")
	}
}

func TestFacadeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fvcache.Measure(ctx, fvcache.MeasureRequest{Workload: "goboard", Scale: fvcache.Test, Config: baseConfig()}); !errors.Is(err, context.Canceled) {
		t.Errorf("Measure: err = %v, want context.Canceled", err)
	}
	if _, err := fvcache.MeasureBatch(ctx, fvcache.MeasureBatchRequest{Workload: "goboard", Scale: fvcache.Test, Configs: []fvcache.Config{baseConfig()}}); !errors.Is(err, context.Canceled) {
		t.Errorf("MeasureBatch: err = %v, want context.Canceled", err)
	}
	if _, err := fvcache.Profile(ctx, fvcache.ProfileRequest{Workload: "goboard", Scale: fvcache.Test, K: 3}); !errors.Is(err, context.Canceled) {
		t.Errorf("Profile: err = %v, want context.Canceled", err)
	}
}

func TestFacadeBadRequests(t *testing.T) {
	ctx := context.Background()
	if _, err := fvcache.Measure(ctx, fvcache.MeasureRequest{Workload: "nope", Scale: fvcache.Test}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := fvcache.MeasureBatch(ctx, fvcache.MeasureBatchRequest{Workload: "goboard", Scale: fvcache.Test}); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := fvcache.Profile(ctx, fvcache.ProfileRequest{Workload: "goboard", Scale: fvcache.Test, K: 0}); err == nil {
		t.Error("K=0 profile accepted")
	}
	if _, err := fvcache.Sweep(ctx, fvcache.SweepRequest{Artifacts: []string{"fig999"}, Scale: fvcache.Test}); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestFacadeWorkloadsAndArtifacts(t *testing.T) {
	wls := fvcache.Workloads()
	if len(wls) < 12 {
		t.Fatalf("Workloads() returned %d entries, want the full suite", len(wls))
	}
	seen := map[string]bool{}
	for _, w := range wls {
		if w.Name == "" || w.Analogue == "" {
			t.Errorf("incomplete workload info: %+v", w)
		}
		seen[w.Name] = true
	}
	for _, want := range []string{"goboard", "ccomp", "strproc"} {
		if !seen[want] {
			t.Errorf("workload %q missing from listing", want)
		}
	}
	arts := fvcache.Artifacts()
	if len(arts) == 0 {
		t.Fatal("Artifacts() empty")
	}
	ids := map[string]bool{}
	for _, a := range arts {
		ids[a.ID] = true
	}
	if !ids["fig10"] || !ids["tab1"] {
		t.Errorf("artifact listing missing paper staples: %v", arts)
	}
}

func TestFacadeCharacterize(t *testing.T) {
	c, err := fvcache.Characterize(context.Background(), fvcache.CharacterizeRequest{Workload: "goboard", Scale: fvcache.Test})
	if err != nil {
		t.Fatal(err)
	}
	if c.Accesses == 0 || c.DistinctValues == 0 {
		t.Fatalf("empty characterization: %+v", c)
	}
	if cov := c.CoverageOfTopK(10); cov <= 0 || cov > 1 {
		t.Errorf("CoverageOfTopK(10) = %v, want (0,1]", cov)
	}
	if c.CoverageOfTopK(1) > c.CoverageOfTopK(10) {
		t.Error("coverage must be monotone in k")
	}
	top := c.TopValues(3)
	if len(top) != 3 || top[0].Count < top[1].Count {
		t.Errorf("TopValues(3) malformed: %v", top)
	}
	if c.MRC != nil {
		t.Error("MRC stanza computed without MRCLineBytes")
	}
}

func TestFacadeMissRateCurves(t *testing.T) {
	ctx := context.Background()
	res, err := fvcache.MissRateCurves(ctx, fvcache.MRCRequest{
		Workload: "goboard", Scale: fvcache.Test,
		LineBytes: 32, MaxSizeBytes: 32 << 10, SetCounts: []int{1, 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 2 || res.Accesses == 0 {
		t.Fatalf("malformed result: %+v", res)
	}
	// Each curve point names an exact LRU geometry; spot-check the
	// direct-mapped point of the 256-set family against a replay.
	dm := res.Curves[1].Points[0]
	if dm.Assoc != 1 || dm.SizeBytes != 256*32 {
		t.Fatalf("unexpected DM point: %+v", dm)
	}
	m, err := fvcache.Measure(ctx, fvcache.MeasureRequest{
		Workload: "goboard", Scale: fvcache.Test,
		Config: fvcache.Config{Main: fvcache.CacheParams{SizeBytes: dm.SizeBytes, LineBytes: 32, Assoc: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Stats.Misses != dm.Misses {
		t.Errorf("DM point misses %d, replay %d", dm.Misses, m.Stats.Misses)
	}
	// Miss counts are monotone non-increasing along each curve.
	for _, c := range res.Curves {
		for i := 1; i < len(c.Points); i++ {
			if c.Points[i].Misses > c.Points[i-1].Misses {
				t.Errorf("sets=%d: misses not monotone at %d: %+v", c.Sets, i, c.Points)
			}
		}
	}
	// Bad requests and cancellation.
	if _, err := fvcache.MissRateCurves(ctx, fvcache.MRCRequest{Workload: "nope", Scale: fvcache.Test, LineBytes: 32}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := fvcache.MissRateCurves(ctx, fvcache.MRCRequest{Workload: "goboard", Scale: fvcache.Test, LineBytes: 24}); err == nil {
		t.Error("invalid line size accepted")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := fvcache.MissRateCurves(cctx, fvcache.MRCRequest{Workload: "goboard", Scale: fvcache.Test, LineBytes: 32}); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestFacadeCharacterizeMRCStanza(t *testing.T) {
	ctx := context.Background()
	c, err := fvcache.Characterize(ctx, fvcache.CharacterizeRequest{
		Workload: "goboard", Scale: fvcache.Test, MRCLineBytes: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.MRC == nil {
		t.Fatal("MRCLineBytes set but no MRC stanza")
	}
	if c.MRC.Accesses != c.Accesses {
		t.Errorf("MRC accesses %d != characterization accesses %d", c.MRC.Accesses, c.Accesses)
	}
	if len(c.MRC.Curves) != 1 || c.MRC.Curves[0].Sets != 1 {
		t.Fatalf("want the fully-associative curve, got %+v", c.MRC.Curves)
	}
	if _, err := fvcache.Characterize(ctx, fvcache.CharacterizeRequest{
		Workload: "goboard", Scale: fvcache.Test, MRCLineBytes: 24,
	}); err == nil {
		t.Error("invalid MRCLineBytes accepted")
	}
}

func TestFacadeSweepStreamsArtifacts(t *testing.T) {
	var streamed []fvcache.ArtifactResult
	var stdout bytes.Buffer
	res, err := fvcache.Sweep(context.Background(), fvcache.SweepRequest{
		Artifacts:  []string{"tab1"},
		Scale:      fvcache.Test,
		Stdout:     &stdout,
		OnArtifact: func(ar fvcache.ArtifactResult) { streamed = append(streamed, ar) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() || res.Done != 1 {
		t.Fatalf("sweep result: %+v", res)
	}
	if len(streamed) != 1 || streamed[0].ID != "tab1" || streamed[0].Status != "done" {
		t.Fatalf("streaming callback: %+v", streamed)
	}
	if streamed[0].Output == "" || !strings.Contains(streamed[0].Output, "tab1") {
		t.Error("streamed artifact carries no output")
	}
	if res.Artifacts[0].Output != streamed[0].Output {
		t.Error("final result output differs from streamed output")
	}
	if stdout.Len() == 0 {
		t.Error("Stdout writer received nothing")
	}
	var summary bytes.Buffer
	res.PrintSummary(&summary)
	if !strings.Contains(summary.String(), "1 done") {
		t.Errorf("summary: %q", summary.String())
	}
}
